/// Tests of tfc::sim::ScenarioEngine: transient→steady convergence against
/// the engine::SolveContext steady solve (the paper's Table-1 chip), frame
/// cadence and seq numbering, sink-driven abort, TEC scheduling, closed-loop
/// DTM behavior, and byte-identical determinism across thread counts.
#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "engine/solve_context.h"
#include "floorplan/alpha21364.h"
#include "par/thread_pool.h"

namespace tfc::sim {
namespace {

tec::TecDeviceParams dev() { return tec::TecDeviceParams::chowdhury_superlattice(); }

/// Central 2x2 deployment on the alpha chip's 12x12 grid.
TileMask center_deployment() {
  TileMask m(12, 12);
  for (std::size_t r = 5; r <= 6; ++r) {
    for (std::size_t c = 5; c <= 6; ++c) m.set(r, c);
  }
  return m;
}

/// Options for a constant-power open-loop run: a length-1 workload trace
/// (guarantee_worst_case pins utilization to exactly 1.0), controller off.
ScenarioOptions constant_power_options(std::size_t steps, double dt) {
  ScenarioOptions o;
  o.workload.timesteps = 1;
  o.workload.phases = 1;
  o.dtm = false;
  o.steps = steps;
  o.dt = dt;
  o.frame_every = steps;  // frame at step 0 and the final step only
  o.include_tiles = true;
  o.start_from_steady_state = false;  // cold start exercises the full transient
  return o;
}

/// Max relative per-tile deviation of the run's final frame from \p reference.
double max_rel_tile_error(const Frame& last, const linalg::Vector& reference) {
  EXPECT_EQ(last.tile_k.size(), reference.size());
  double worst = 0.0;
  for (std::size_t t = 0; t < reference.size(); ++t) {
    worst = std::max(worst, std::abs(last.tile_k[t] - reference[t]) /
                                std::abs(reference[t]));
  }
  return worst;
}

TEST(Scenario, TransientConvergesToSteadyStateWithoutTec) {
  const auto plan = floorplan::alpha21364();
  const thermal::PackageGeometry geometry;
  // Backward Euler's fixed point is the exact steady state for any dt, so a
  // large step reaches it quickly even past the heat sink's long time
  // constant (each mode decays by 1/(1 + dt/tau) per step).
  ScenarioEngine engine(plan, geometry, dev(), center_deployment(),
                        constant_power_options(300, 50.0));

  Frame last;
  auto summary = engine.run([&](const Frame& f) {
    last = f;
    return true;
  });
  ASSERT_GT(summary.frames, 0u);

  // The same assembled system, solved directly for the steady state. The
  // length-1 trace holds every unit at utilization 1.0, so the transient's
  // power map is exactly plan.tile_powers().
  const engine::SolveContext context(geometry, center_deployment(),
                                     plan.tile_powers(), dev());
  auto op = context.solve(0.0);
  ASSERT_TRUE(op.has_value());
  EXPECT_LE(max_rel_tile_error(last, op->tile_temperatures), 1e-8);
  EXPECT_NEAR(summary.final_peak_k, op->peak_tile_temperature,
              1e-8 * op->peak_tile_temperature);
  EXPECT_DOUBLE_EQ(summary.duty_cycle, 0.0);
  EXPECT_DOUBLE_EQ(summary.tec_energy_j, 0.0);
}

TEST(Scenario, TransientConvergesToSteadyStateWithEnergizedTec) {
  const auto plan = floorplan::alpha21364();
  const thermal::PackageGeometry geometry;
  const double current = 1.5;
  auto opts = constant_power_options(300, 50.0);
  opts.schedule.push_back({0, current});
  ScenarioEngine engine(plan, geometry, dev(), center_deployment(), opts);

  Frame last;
  auto summary = engine.run([&](const Frame& f) {
    last = f;
    return true;
  });

  const engine::SolveContext context(geometry, center_deployment(),
                                     plan.tile_powers(), dev());
  auto op = context.solve(current);
  ASSERT_TRUE(op.has_value());
  EXPECT_LE(max_rel_tile_error(last, op->tile_temperatures), 1e-8);
  EXPECT_DOUBLE_EQ(summary.duty_cycle, 1.0);
  EXPECT_GT(summary.tec_energy_j, 0.0);
  // Energy integrates the steady input power over the energized interval.
  EXPECT_NEAR(summary.tec_energy_j,
              op->tec_input_power * double(summary.steps) * 50.0,
              0.05 * summary.tec_energy_j);
}

TEST(Scenario, FrameCadenceAndSeqNumbering) {
  const auto plan = floorplan::alpha21364();
  ScenarioOptions o;
  o.steps = 47;
  o.frame_every = 10;
  o.dt = 1e-3;
  ScenarioEngine engine(plan, thermal::PackageGeometry{}, dev(), TileMask(12, 12), o);

  std::vector<Frame> frames;
  auto summary = engine.run([&](const Frame& f) {
    frames.push_back(f);
    return true;
  });

  // Steps 0, 10, 20, 30, 40, and the final step 46.
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(summary.frames, frames.size());
  const std::size_t expected_steps[] = {0, 10, 20, 30, 40, 46};
  for (std::size_t k = 0; k < frames.size(); ++k) {
    EXPECT_EQ(frames[k].seq, k);
    EXPECT_EQ(frames[k].step, expected_steps[k]);
    EXPECT_DOUBLE_EQ(frames[k].time_s, double(expected_steps[k] + 1) * o.dt);
  }
  EXPECT_FALSE(summary.aborted);
  EXPECT_EQ(summary.steps, o.steps);
}

TEST(Scenario, SinkAbortStopsTheRun) {
  const auto plan = floorplan::alpha21364();
  ScenarioOptions o;
  o.steps = 100;
  o.frame_every = 5;
  ScenarioEngine engine(plan, thermal::PackageGeometry{}, dev(), TileMask(12, 12), o);

  std::size_t delivered = 0;
  auto summary = engine.run([&](const Frame&) { return ++delivered < 3; });
  EXPECT_TRUE(summary.aborted);
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(summary.frames, 3u);
  EXPECT_LT(summary.steps, o.steps);
}

TEST(Scenario, ScheduleSwitchesTecOnAndOff) {
  const auto plan = floorplan::alpha21364();
  auto o = constant_power_options(40, 1e-3);
  o.frame_every = 1;
  o.schedule = {{10, 2.0}, {30, 0.0}};
  ScenarioEngine engine(plan, thermal::PackageGeometry{}, dev(),
                        center_deployment(), o);

  std::vector<Frame> frames;
  auto summary = engine.run([&](const Frame& f) {
    frames.push_back(f);
    return true;
  });
  ASSERT_EQ(frames.size(), 40u);
  for (const auto& f : frames) {
    const double expected = f.step >= 10 && f.step < 30 ? 2.0 : 0.0;
    EXPECT_DOUBLE_EQ(f.current_a, expected) << "step " << f.step;
  }
  // 20 of 40 steps energized; the 0 A and 2 A pencils were both factorized.
  EXPECT_DOUBLE_EQ(summary.duty_cycle, 0.5);
  EXPECT_EQ(summary.distinct_currents, 2u);
}

TEST(Scenario, ClosedLoopHoldsLimitThatOpenLoopViolates) {
  const auto plan = floorplan::alpha21364();
  const double limit_k = thermal::to_kelvin(68.0);

  ScenarioOptions open;
  open.steps = 300;
  open.dtm = false;
  open.policy.theta_limit = limit_k;
  ScenarioEngine open_engine(plan, thermal::PackageGeometry{}, dev(),
                             center_deployment(), open);
  auto open_summary = open_engine.run();
  ASSERT_GT(open_summary.violation_steps, 0u)
      << "limit must start out violated for the closed-loop test to bite";

  ScenarioOptions closed = open;
  closed.dtm = true;
  closed.policy.current_levels = {0.0, 2.4, 4.8};
  ScenarioEngine closed_engine(plan, thermal::PackageGeometry{}, dev(),
                               center_deployment(), closed);
  auto closed_summary = closed_engine.run();
  EXPECT_TRUE(closed_summary.limit_held_at_end);
  EXPECT_LT(closed_summary.final_peak_k, open_summary.final_peak_k);
  EXPECT_GT(closed_summary.current_up_actions + closed_summary.throttle_actions, 0u);
}

TEST(Scenario, RunIsRepeatableAndByteIdenticalAcrossThreadCounts) {
  const auto plan = floorplan::alpha21364();
  ScenarioOptions o;
  o.steps = 60;
  o.frame_every = 10;
  o.include_tiles = true;
  o.policy.theta_limit = thermal::to_kelvin(68.0);
  o.policy.current_levels = {0.0, 2.0, 4.0};

  auto render = [&]() {
    ScenarioEngine engine(plan, thermal::PackageGeometry{}, dev(),
                          center_deployment(), o);
    std::string text;
    auto summary = engine.run([&](const Frame& f) {
      text += frame_to_json(f, plan).dump();
      text += '\n';
      return true;
    });
    text += summary_to_json(summary).dump();
    return text;
  };

  par::ThreadPool::set_global_threads(1);
  const std::string serial = render();
  par::ThreadPool::set_global_threads(8);
  const std::string parallel = render();
  EXPECT_EQ(serial, parallel);
}

TEST(Scenario, InvalidOptionsThrow) {
  const auto plan = floorplan::alpha21364();
  const thermal::PackageGeometry geometry;
  auto make = [&](ScenarioOptions o) {
    ScenarioEngine engine(plan, geometry, dev(), TileMask(12, 12), o);
  };
  ScenarioOptions bad_dt;
  bad_dt.dt = 0.0;
  EXPECT_THROW(make(bad_dt), std::invalid_argument);
  ScenarioOptions bad_steps;
  bad_steps.steps = 0;
  EXPECT_THROW(make(bad_steps), std::invalid_argument);
  ScenarioOptions bad_frame;
  bad_frame.frame_every = 0;
  EXPECT_THROW(make(bad_frame), std::invalid_argument);
  ScenarioOptions bad_schedule;
  bad_schedule.schedule = {{0, -1.0}};
  EXPECT_THROW(make(bad_schedule), std::invalid_argument);
  // Grid mismatch between the floorplan and the package geometry.
  thermal::PackageGeometry wrong;
  wrong.tile_rows = wrong.tile_cols = 6;
  EXPECT_THROW(
      ScenarioEngine(plan, wrong, dev(), TileMask(6, 6), ScenarioOptions{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace tfc::sim
