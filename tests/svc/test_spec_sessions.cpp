/// Declarative-package sessions through the service: the session cache must
/// key on the full package content (two different specs never share a cache
/// entry — and with it a factorization), the same spec content must hit, and
/// solver methods must accept a "spec" parameter end-to-end.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "io/spec_json.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/session_cache.h"
#include "thermal/stack_spec.h"

namespace tfc::svc {
namespace {

std::string temp_path(const std::string& tag, const std::string& ext) {
  return (std::filesystem::temp_directory_path() /
          ("tfc_spec_sess_" + tag + "_" + std::to_string(::getpid()) + ext))
      .string();
}

/// 6x6 paper-style spec with an adjustable die power, written to a file.
class SpecFile {
 public:
  SpecFile(const std::string& tag, double power_w) : path_(temp_path(tag, ".json")) {
    thermal::PackageGeometry g;
    g.tile_rows = 6;
    g.tile_cols = 6;
    thermal::StackSpec s = thermal::StackSpec::single_die(g);
    s.name = "sess-" + tag;
    s.chips[0].layers[0].power_w = power_w;
    std::ofstream f(path_);
    f << io::spec_to_json(s).dump() << "\n";
  }
  ~SpecFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options) : server_(std::move(options)) {
    thread_ = std::thread([this] { server_.run(); });
  }
  ~ServerFixture() {
    server_.request_stop();
    thread_.join();
  }
  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
};

ServerOptions quick_options(const std::string& tag) {
  ServerOptions o;
  o.socket_path = temp_path(tag, ".sock");
  o.workers = 2;
  o.queue_capacity = 16;
  o.cache_capacity = 4;
  return o;
}

TEST(SessionKeySpec, PackageHashDiscriminatesKeys) {
  SessionKey a;
  a.chip = "same-name";
  a.package = "aaaaaaaaaaaaaaaa";
  SessionKey b = a;
  b.package = "bbbbbbbbbbbbbbbb";
  EXPECT_NE(a.to_string(), b.to_string());

  // Same chip label + grid + limit but different packages must build twice.
  SessionCache cache(4);
  int builds = 0;
  auto builder = [&builds](const SessionKey& key) {
    ++builds;
    auto s = std::make_shared<Session>();
    s->key = key;
    return std::shared_ptr<const Session>(s);
  };
  bool hit = true;
  cache.get_or_build(a, builder, &hit);
  EXPECT_FALSE(hit);
  cache.get_or_build(b, builder, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(builds, 2);
  cache.get_or_build(a, builder, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(builds, 2);
}

TEST(ServiceSpec, TwoSpecsNeverShareAFactorization) {
  SpecFile spec_a("a", 10.0);
  SpecFile spec_b("b", 12.0);  // differs only in die power ⇒ different hash

  ServerFixture fx(quick_options("twospecs"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  // svc.cache.* counters are process-global: assert on deltas.
  const std::uint64_t hits0 = fx.server().cache().hits();
  const std::uint64_t misses0 = fx.server().cache().misses();

  io::JsonValue pa = io::JsonValue::make_object();
  pa.set("spec", io::JsonValue::make_string(spec_a.path()));
  io::JsonValue pb = io::JsonValue::make_object();
  pb.set("spec", io::JsonValue::make_string(spec_b.path()));

  auto ra = client.call("solve", pa);
  ASSERT_TRUE(ra.at("ok").as_bool()) << ra.dump();
  auto rb = client.call("solve", pb);
  ASSERT_TRUE(rb.at("ok").as_bool()) << rb.dump();

  // Different package content ⇒ two sessions, no sharing.
  EXPECT_EQ(fx.server().cache().size(), 2u);
  EXPECT_EQ(fx.server().cache().misses() - misses0, 2u);
  EXPECT_EQ(fx.server().cache().hits() - hits0, 0u);

  // Identical spec content ⇒ a hit on the existing session.
  auto ra2 = client.call("solve", pa);
  ASSERT_TRUE(ra2.at("ok").as_bool());
  EXPECT_EQ(fx.server().cache().hits() - hits0, 1u);
  EXPECT_EQ(fx.server().cache().size(), 2u);

  // Higher die power must read back hotter: the sessions really are distinct.
  const double peak_a = ra.at("result").at("peak_celsius").as_number();
  const double peak_b = rb.at("result").at("peak_celsius").as_number();
  EXPECT_GT(peak_b, peak_a);
}

TEST(ServiceSpec, SpecAndBuiltinChipAreDistinctSessions) {
  SpecFile spec("mix", 10.0);
  ServerFixture fx(quick_options("mix"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  io::JsonValue chip_params = io::JsonValue::make_object();
  chip_params.set("chip", io::JsonValue::make_string("alpha"));
  ASSERT_TRUE(client.call("solve", chip_params).at("ok").as_bool());

  io::JsonValue spec_params = io::JsonValue::make_object();
  spec_params.set("spec", io::JsonValue::make_string(spec.path()));
  ASSERT_TRUE(client.call("solve", spec_params).at("ok").as_bool());

  EXPECT_EQ(fx.server().cache().size(), 2u);

  // The flight recorder labels the spec session "name@hash".
  auto recent = fx.server().recorder().recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_NE(recent[0].spec.find("sess-mix@"), std::string::npos);
  EXPECT_TRUE(recent[1].spec.empty());
}

TEST(ServiceSpec, BadSpecPathIsBadRequest) {
  ServerFixture fx(quick_options("badspec"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  io::JsonValue params = io::JsonValue::make_object();
  params.set("spec", io::JsonValue::make_string("/nonexistent/stack.json"));
  auto reply = client.call("solve", params);
  ASSERT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "bad_request");
}

TEST(ServiceSpec, DesignMethodAcceptsSpec) {
  SpecFile spec("design", 10.0);
  ServerFixture fx(quick_options("design"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  io::JsonValue params = io::JsonValue::make_object();
  params.set("spec", io::JsonValue::make_string(spec.path()));
  auto reply = client.call("design", params);
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  EXPECT_EQ(reply.at("result").at("chip").as_string(), "sess-design");
}

}  // namespace
}  // namespace tfc::svc
