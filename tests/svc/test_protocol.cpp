#include "svc/protocol.h"

#include <gtest/gtest.h>

namespace tfc::svc {
namespace {

TEST(Protocol, ParsesMinimalRequest) {
  auto req = parse_request(R"({"method": "ping"})");
  EXPECT_EQ(req.method, "ping");
  EXPECT_TRUE(req.id.is_null());
  EXPECT_TRUE(req.params.is_object());
  EXPECT_TRUE(req.params.members().empty());
  EXPECT_DOUBLE_EQ(req.deadline_ms, 0.0);
}

TEST(Protocol, ParsesFullRequest) {
  auto req = parse_request(
      R"({"id": 7, "method": "solve", "params": {"chip": "hc3"}, "deadline_ms": 250})");
  EXPECT_EQ(req.method, "solve");
  EXPECT_DOUBLE_EQ(req.id.as_number(), 7.0);
  EXPECT_EQ(req.params.at("chip").as_string(), "hc3");
  EXPECT_DOUBLE_EQ(req.deadline_ms, 250.0);
}

TEST(Protocol, StringIdsSurviveRoundTrip) {
  auto req = parse_request(R"({"id": "req-42", "method": "ping"})");
  const std::string reply = make_result_reply(req.id, io::JsonValue::make_object());
  auto parsed = io::parse_json(reply);
  EXPECT_EQ(parsed.at("id").as_string(), "req-42");
  EXPECT_TRUE(parsed.at("ok").as_bool());
}

TEST(Protocol, NonJsonLineIsParseError) {
  try {
    parse_request("this is not json");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseError);
  }
}

TEST(Protocol, NonObjectIsParseError) {
  try {
    parse_request("[1, 2, 3]");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseError);
  }
}

TEST(Protocol, MissingMethodIsBadRequest) {
  try {
    parse_request(R"({"id": 1})");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
}

TEST(Protocol, BadDeadlineIsBadRequest) {
  EXPECT_THROW(parse_request(R"({"method": "ping", "deadline_ms": -5})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"method": "ping", "deadline_ms": "soon"})"),
               ProtocolError);
}

TEST(Protocol, BadParamsTypeIsBadRequest) {
  EXPECT_THROW(parse_request(R"({"method": "ping", "params": [1]})"), ProtocolError);
}

TEST(Protocol, ErrorReplyCarriesCodeStatusMessage) {
  const std::string reply = make_error_reply(io::JsonValue::make_number(3),
                                             ErrorCode::kOverloaded, "queue full");
  auto parsed = io::parse_json(reply);
  EXPECT_FALSE(parsed.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(parsed.at("id").as_number(), 3.0);
  EXPECT_EQ(parsed.at("error").at("code").as_string(), "overloaded");
  EXPECT_DOUBLE_EQ(parsed.at("error").at("status").as_number(), 429.0);
  EXPECT_EQ(parsed.at("error").at("message").as_string(), "queue full");
}

TEST(Protocol, StatusMapping) {
  EXPECT_EQ(error_status(ErrorCode::kParseError), 400);
  EXPECT_EQ(error_status(ErrorCode::kBadRequest), 400);
  EXPECT_EQ(error_status(ErrorCode::kUnknownMethod), 404);
  EXPECT_EQ(error_status(ErrorCode::kDeadlineExceeded), 408);
  EXPECT_EQ(error_status(ErrorCode::kOverloaded), 429);
  EXPECT_EQ(error_status(ErrorCode::kShuttingDown), 503);
  EXPECT_EQ(error_status(ErrorCode::kInternal), 500);
}

TEST(Protocol, ReplyIsSingleLine) {
  const std::string reply =
      make_error_reply(io::JsonValue::make_string("a\nb"), ErrorCode::kInternal, "x\ny");
  EXPECT_EQ(reply.find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// PR 4: trace_id / trace request fields and ReplyExtras

TEST(Protocol, TraceFieldsDefaultToOff) {
  const Request req = parse_request(R"({"method": "ping"})");
  EXPECT_EQ(req.trace_id, "");
  EXPECT_FALSE(req.want_trace);
}

TEST(Protocol, TraceFieldsParse) {
  const Request req =
      parse_request(R"({"method": "solve", "trace_id": "cli-7", "trace": true})");
  EXPECT_EQ(req.trace_id, "cli-7");
  EXPECT_TRUE(req.want_trace);
}

TEST(Protocol, BadTraceFieldsAreBadRequest) {
  EXPECT_THROW(parse_request(R"({"method": "ping", "trace_id": 7})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"method": "ping", "trace": "yes"})"), ProtocolError);
  const std::string long_id(129, 'x');
  EXPECT_THROW(parse_request(R"({"method": "ping", "trace_id": ")" + long_id + R"("})"),
               ProtocolError);
  // 128 bytes is the cap, not beyond it.
  const std::string ok_id(128, 'x');
  EXPECT_EQ(parse_request(R"({"method": "ping", "trace_id": ")" + ok_id + R"("})")
                .trace_id,
            ok_id);
}

TEST(Protocol, ReplyExtrasAttachTraceIdAndTree) {
  ReplyExtras extras;
  extras.trace_id = "srv-1-2";
  io::JsonValue trace = io::parse_json(R"({"span_count": 1, "spans": []})");
  extras.trace = &trace;

  io::JsonValue result = io::JsonValue::make_object();
  result.set("pong", io::JsonValue::make_bool(true));
  const auto ok = io::parse_json(
      make_result_reply(io::JsonValue::make_number(1), result, extras));
  EXPECT_EQ(ok.at("trace_id").as_string(), "srv-1-2");
  EXPECT_DOUBLE_EQ(ok.at("trace").at("span_count").as_number(), 1.0);

  const auto err = io::parse_json(make_error_reply(
      io::JsonValue::make_number(2), ErrorCode::kInternal, "boom", extras));
  EXPECT_EQ(err.at("trace_id").as_string(), "srv-1-2");
  EXPECT_TRUE(err.has("trace"));
}

TEST(Protocol, EmptyExtrasAddNoFields) {
  const auto reply = io::parse_json(make_result_reply(
      io::JsonValue::make_number(1), io::JsonValue::make_object()));
  EXPECT_FALSE(reply.has("trace_id"));
  EXPECT_FALSE(reply.has("trace"));
}

}  // namespace
}  // namespace tfc::svc
