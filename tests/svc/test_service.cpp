/// End-to-end tests of the solver service: a real Server on a temp unix
/// socket (plus TCP), driven through the blocking Client. The solver-heavy
/// paths use the small built-in chips so the suite stays fast; the
/// scheduling paths (deadline, overload, drain) use `ping` with `delay_ms`
/// so they are deterministic without burning CPU.
#include "svc/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "svc/client.h"

namespace tfc::svc {
namespace {

std::string temp_socket_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("tfc_svc_test_" + tag + "_" + std::to_string(::getpid()) + ".sock"))
      .string();
}

/// Server running on a background thread for the duration of a test.
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options) : server_(std::move(options)) {
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerFixture() {
    server_.request_stop();
    thread_.join();
  }

  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
};

ServerOptions quick_options(const std::string& tag) {
  ServerOptions o;
  o.socket_path = temp_socket_path(tag);
  o.workers = 2;
  o.queue_capacity = 16;
  o.cache_capacity = 4;
  return o;
}

TEST(Service, PingPong) {
  ServerFixture fx(quick_options("ping"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = client.call("ping");
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(reply.at("result").at("pong").as_bool());
  EXPECT_DOUBLE_EQ(reply.at("id").as_number(), 1.0);
}

TEST(Service, TcpListenerWorks) {
  ServerOptions o;
  o.listen = "127.0.0.1:0";
  o.workers = 1;
  ServerFixture fx(o);
  ASSERT_GT(fx.server().tcp_port(), 0);
  auto client = Client::connect_tcp("127.0.0.1", fx.server().tcp_port());
  auto reply = client.call("ping");
  EXPECT_TRUE(reply.at("ok").as_bool());
}

TEST(Service, MalformedLineGetsParseError) {
  ServerFixture fx(quick_options("parse"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = io::parse_json(client.call_raw("this is not json"));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "parse_error");
  EXPECT_TRUE(reply.at("id").is_null());
  // The connection survives a bad line.
  EXPECT_TRUE(client.call("ping").at("ok").as_bool());
}

TEST(Service, UnknownMethodNamed) {
  ServerFixture fx(quick_options("method"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = client.call("frobnicate");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "unknown_method");
  EXPECT_NE(reply.at("error").at("message").as_string().find("frobnicate"),
            std::string::npos);
}

TEST(Service, ProfileMethodValidatesFormatAndReportsState) {
  auto opts = quick_options("profile");
  opts.profile = true;
  ServerFixture fx(opts);
  auto client = Client::connect_unix(fx.server().options().socket_path);

  io::JsonValue bad = io::JsonValue::make_object();
  bad.set("format", io::JsonValue::make_string("xml"));
  auto err = client.call("profile", bad);
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("code").as_string(), "bad_request");
  EXPECT_NE(err.at("error").at("message").as_string().find("format"),
            std::string::npos);

  auto reply = client.call("profile");
  ASSERT_TRUE(reply.at("ok").as_bool());
  const auto& result = reply.at("result");
  EXPECT_EQ(result.at("format").as_string(), "json");
  EXPECT_TRUE(result.at("enabled").as_bool());
  EXPECT_FALSE(result.at("windowed").as_bool());
  EXPECT_GE(result.at("overhead_ratio").as_number(), 0.0);
  // The handler's own svc.method.profile span is profiled, so the tree is
  // never empty while the profiler is on.
  EXPECT_GT(result.at("totals").at("count").as_number(), 0.0);
  EXPECT_TRUE(result.at("profile").is_object());

  io::JsonValue collapsed = io::JsonValue::make_object();
  collapsed.set("format", io::JsonValue::make_string("collapsed"));
  collapsed.set("windowed", io::JsonValue::make_bool(true));
  auto text_reply = client.call("profile", collapsed);
  ASSERT_TRUE(text_reply.at("ok").as_bool());
  EXPECT_TRUE(text_reply.at("result").at("windowed").as_bool());
  EXPECT_NE(text_reply.at("result").at("text").as_string().find("svc.method"),
            std::string::npos);

  obs::prof::Profiler::global().disable();
  (void)obs::prof::Profiler::global().snapshot(true);
}

TEST(Service, SolveServedFromSessionCacheOnRepeat) {
  ServerFixture fx(quick_options("cache"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  const auto hits_before = fx.server().cache().hits();

  io::JsonValue params = io::JsonValue::make_object();
  params.set("chip", io::JsonValue::make_string("alpha"));
  auto first = client.call("solve", params);
  ASSERT_TRUE(first.at("ok").as_bool()) << first.dump();
  auto second = client.call("solve", params);
  ASSERT_TRUE(second.at("ok").as_bool());

  EXPECT_GE(fx.server().cache().hits() - hits_before, 1u);
  // Identical query → identical answer (the cache is semantically invisible).
  EXPECT_EQ(first.at("result").dump(), second.at("result").dump());
  EXPECT_GT(first.at("result").at("peak_celsius").as_number(), 20.0);
  EXPECT_GT(first.at("result").at("tec_count").as_number(), 0.0);
}

TEST(Service, DesignMatchesCliSerialization) {
  ServerFixture fx(quick_options("design"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = client.call("design");
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const auto& result = reply.at("result");
  EXPECT_EQ(result.at("chip").as_string(), "alpha");
  EXPECT_TRUE(result.at("success").as_bool());
  EXPECT_EQ(result.at("deployment").as_array().size(), 12u);
}

TEST(Service, RunawayAndSweep) {
  ServerFixture fx(quick_options("sweep"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  auto runaway = client.call("runaway");
  ASSERT_TRUE(runaway.at("ok").as_bool());
  const double lm = runaway.at("result").at("lambda_m_a").as_number();
  EXPECT_GT(lm, 0.0);

  io::JsonValue params = io::JsonValue::make_object();
  params.set("points", io::JsonValue::make_number(5));
  auto sweep = client.call("sweep", params);
  ASSERT_TRUE(sweep.at("ok").as_bool());
  const auto& currents = sweep.at("result").at("current_a").as_array();
  const auto& peaks = sweep.at("result").at("peak_celsius").as_array();
  ASSERT_EQ(currents.size(), 6u);
  ASSERT_EQ(peaks.size(), 6u);
  EXPECT_DOUBLE_EQ(sweep.at("result").at("lambda_m_a").as_number(), lm);
}

TEST(Service, RunawayMethodParamSelectsEigensolverAndCrossValidates) {
  ServerFixture fx(quick_options("runawaymethod"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  // Default: the engine's sparse Lanczos, echoed back in the reply.
  auto def = client.call("runaway");
  ASSERT_TRUE(def.at("ok").as_bool()) << def.dump();
  EXPECT_EQ(def.at("result").at("method").as_string(), "sparse");
  const double sparse_lm = def.at("result").at("lambda_m_a").as_number();

  // Explicit methods recompute λ_m through the per-method cache and must
  // agree with the sparse default to 1e-8 relative.
  for (const char* m : {"schur", "dense"}) {
    io::JsonValue params = io::JsonValue::make_object();
    params.set("method", io::JsonValue::make_string(m));
    auto reply = client.call("runaway", params);
    ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
    EXPECT_EQ(reply.at("result").at("method").as_string(), m);
    const double lm = reply.at("result").at("lambda_m_a").as_number();
    EXPECT_NEAR(lm, sparse_lm, 1e-8 * lm) << m;
  }

  io::JsonValue bad = io::JsonValue::make_object();
  bad.set("method", io::JsonValue::make_string("lobpcg"));
  auto reply = client.call("runaway", bad);
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "bad_request");
  EXPECT_NE(reply.at("error").at("message").as_string().find("sparse|schur|dense"),
            std::string::npos);
}

TEST(Service, BadParamsAreStructuredErrors) {
  ServerFixture fx(quick_options("badparams"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  io::JsonValue params = io::JsonValue::make_object();
  params.set("chip", io::JsonValue::make_string("pentium"));
  auto reply = client.call("solve", params);
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "bad_request");
  EXPECT_NE(reply.at("error").at("message").as_string().find("pentium"),
            std::string::npos);
}

TEST(Service, ExpiredDeadlineGetsStructuredTimeout) {
  ServerOptions o = quick_options("deadline");
  o.workers = 1;  // a single worker so a slow request blocks the queue
  ServerFixture fx(o);

  // Occupy the only worker for ~400 ms.
  std::thread blocker([&] {
    auto slow = Client::connect_unix(fx.server().options().socket_path);
    io::JsonValue params = io::JsonValue::make_object();
    params.set("delay_ms", io::JsonValue::make_number(400));
    (void)slow.call("ping", params);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // This request's 50 ms deadline expires while it waits in the queue.
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = client.call("ping", io::JsonValue::make_null(), /*deadline_ms=*/50);
  blocker.join();
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "deadline_exceeded");
  EXPECT_DOUBLE_EQ(reply.at("error").at("status").as_number(), 408.0);
}

TEST(Service, FullQueueShedsLoadInsteadOfBlocking) {
  ServerOptions o = quick_options("overload");
  o.workers = 1;
  o.queue_capacity = 1;
  ServerFixture fx(o);

  io::JsonValue slow_params = io::JsonValue::make_object();
  slow_params.set("delay_ms", io::JsonValue::make_number(600));

  // First request occupies the worker; second fills the 1-slot queue.
  std::thread t1([&] {
    auto c = Client::connect_unix(fx.server().options().socket_path);
    EXPECT_TRUE(c.call("ping", slow_params).at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread t2([&] {
    auto c = Client::connect_unix(fx.server().options().socket_path);
    EXPECT_TRUE(c.call("ping", slow_params).at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Third request finds the queue full and is rejected immediately.
  auto client = Client::connect_unix(fx.server().options().socket_path);
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = client.call("ping");
  const double waited_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  t1.join();
  t2.join();
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "overloaded");
  EXPECT_DOUBLE_EQ(reply.at("error").at("status").as_number(), 429.0);
  EXPECT_LT(waited_ms, 500.0);  // shed, not queued behind ~1.2 s of work
}

TEST(Service, ShutdownRequestDrainsAndStops) {
  ServerOptions o = quick_options("shutdown");
  o.workers = 1;
  Server server(o);
  std::thread runner([&] { server.run(); });

  // Queue a slow request, then ask for shutdown: the slow reply must still
  // arrive (drain-then-stop), and run() must return.
  std::thread slow_caller([&] {
    auto c = Client::connect_unix(o.socket_path);
    io::JsonValue params = io::JsonValue::make_object();
    params.set("delay_ms", io::JsonValue::make_number(300));
    auto reply = c.call("ping", params);
    EXPECT_TRUE(reply.at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto client = Client::connect_unix(o.socket_path);
  auto reply = client.call("shutdown");
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(reply.at("result").at("stopping").as_bool());

  runner.join();
  slow_caller.join();
  // The socket is gone after shutdown.
  EXPECT_FALSE(std::filesystem::exists(o.socket_path));
  EXPECT_THROW(Client::connect_unix(o.socket_path), std::runtime_error);
}

TEST(Service, StatsReportsCacheAndLimits) {
  ServerOptions o = quick_options("stats");
  o.queue_capacity = 5;
  o.cache_capacity = 3;
  ServerFixture fx(o);
  auto client = Client::connect_unix(o.socket_path);
  auto reply = client.call("stats");
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(reply.at("result").at("queue_capacity").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(reply.at("result").at("cache").at("capacity").as_number(), 3.0);
}

// ---------------------------------------------------------------------------
// PR 4: tracing, live metrics, flight recorder

TEST(Service, TraceIdEchoedOrGenerated) {
  ServerFixture fx(quick_options("traceid"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  auto echoed = io::parse_json(
      client.call_raw(R"({"id": 1, "method": "ping", "trace_id": "cli-abc"})"));
  ASSERT_TRUE(echoed.at("ok").as_bool());
  EXPECT_EQ(echoed.at("trace_id").as_string(), "cli-abc");

  auto generated = io::parse_json(client.call_raw(R"({"id": 2, "method": "ping"})"));
  ASSERT_TRUE(generated.at("ok").as_bool());
  EXPECT_EQ(generated.at("trace_id").as_string().rfind("srv-", 0), 0u);
  // Without `"trace": true` no span tree rides along.
  EXPECT_FALSE(generated.has("trace"));
}

TEST(Service, InlineTraceCarriesSolverSpans) {
  ServerFixture fx(quick_options("trace"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  auto reply = io::parse_json(client.call_raw(
      R"({"id": 1, "method": "solve", "params": {"chip": "alpha"}, "trace": true})"));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  ASSERT_TRUE(reply.has("trace"));
  const auto& trace = reply.at("trace");
  EXPECT_EQ(trace.at("trace_id").as_string(), reply.at("trace_id").as_string());
  EXPECT_GE(trace.at("span_count").as_number(), 2.0);

  const auto& roots = trace.at("spans").as_array();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].at("name").as_string(), "svc.request");
  EXPECT_GE(roots[0].at("dur_us").as_number(), 0.0);

  // Somewhere under svc.request the electro-thermal solve must appear.
  std::function<bool(const io::JsonValue&, const std::string&)> contains =
      [&](const io::JsonValue& span, const std::string& name) {
        if (span.at("name").as_string() == name) return true;
        if (!span.has("children")) return false;
        for (const auto& child : span.at("children").as_array())
          if (contains(child, name)) return true;
        return false;
      };
  EXPECT_TRUE(contains(roots[0], "et_solve")) << trace.dump();
}

TEST(Service, MetricsMethodServesJsonAndPrometheus) {
  ServerFixture fx(quick_options("metrics"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  ASSERT_TRUE(client.call("ping").at("ok").as_bool());

  auto json_reply = client.call("metrics");
  ASSERT_TRUE(json_reply.at("ok").as_bool()) << json_reply.dump();
  EXPECT_EQ(json_reply.at("result").at("format").as_string(), "json");
  const auto& metrics = json_reply.at("result").at("metrics");
  EXPECT_GE(metrics.at("counters").at("svc.requests.received").as_number(), 1.0);
  EXPECT_TRUE(metrics.at("gauges").has("svc.queue_depth"));
  EXPECT_GT(metrics.at("gauges").at("process.rss_bytes").as_number(), 0.0);

  io::JsonValue params = io::JsonValue::make_object();
  params.set("format", io::JsonValue::make_string("prometheus"));
  auto prom_reply = client.call("metrics", params);
  ASSERT_TRUE(prom_reply.at("ok").as_bool());
  const std::string text = prom_reply.at("result").at("text").as_string();
  EXPECT_NE(text.find("svc_requests_received_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE svc_latency_ms summary"), std::string::npos);
  EXPECT_NE(text.find("method=\"ping\""), std::string::npos);

  params.set("format", io::JsonValue::make_string("xml"));
  auto bad = client.call("metrics", params);
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").at("code").as_string(), "bad_request");
}

TEST(Service, RecentReportsCacheMissThenHit) {
  ServerFixture fx(quick_options("recent"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  io::JsonValue params = io::JsonValue::make_object();
  params.set("chip", io::JsonValue::make_string("alpha"));
  ASSERT_TRUE(client.call("solve", params).at("ok").as_bool());
  ASSERT_TRUE(client.call("solve", params).at("ok").as_bool());

  auto reply = client.call("recent");
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const auto& result = reply.at("result");
  EXPECT_DOUBLE_EQ(result.at("capacity").as_number(), 128.0);
  EXPECT_GE(result.at("total").as_number(), 2.0);

  const auto& records = result.at("requests").as_array();
  ASSERT_GE(records.size(), 2u);
  // Newest first: records[0] is the second (cached) solve.
  EXPECT_GT(records[0].at("seq").as_number(), records[1].at("seq").as_number());
  EXPECT_EQ(records[0].at("method").as_string(), "solve");
  EXPECT_EQ(records[0].at("chip").as_string(), "alpha");
  EXPECT_EQ(records[0].at("cache").as_string(), "hit");
  EXPECT_EQ(records[1].at("cache").as_string(), "miss");
  EXPECT_EQ(records[0].at("status").as_string(), "ok");
  EXPECT_GE(records[0].at("latency_ms").as_number(), 0.0);
  // The cache miss did real factorization work; the record shows it.
  EXPECT_GT(records[1].at("factorizations").as_number(), 0.0);
  EXPECT_GT(records[1].at("span_count").as_number(), 1.0);

  io::JsonValue limit = io::JsonValue::make_object();
  limit.set("count", io::JsonValue::make_number(1));
  auto limited = client.call("recent", limit);
  ASSERT_TRUE(limited.at("ok").as_bool());
  EXPECT_EQ(limited.at("result").at("requests").as_array().size(), 1u);

  limit.set("count", io::JsonValue::make_number(0));
  EXPECT_FALSE(client.call("recent", limit).at("ok").as_bool());
}

TEST(Service, StatsReportBuildAndProcessInfo) {
  ServerOptions o = quick_options("statsinfo");
  o.recorder_capacity = 7;
  ServerFixture fx(o);
  auto client = Client::connect_unix(o.socket_path);
  ASSERT_TRUE(client.call("ping").at("ok").as_bool());

  auto reply = client.call("stats");
  ASSERT_TRUE(reply.at("ok").as_bool());
  const auto& result = reply.at("result");
  EXPECT_FALSE(result.at("version").as_string().empty());
  EXPECT_FALSE(result.at("git").as_string().empty());
  EXPECT_DOUBLE_EQ(result.at("pid").as_number(), double(::getpid()));
  EXPECT_GE(result.at("uptime_s").as_number(), 0.0);
  EXPECT_GT(result.at("rss_bytes").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(result.at("recorder").at("capacity").as_number(), 7.0);
  EXPECT_GE(result.at("recorder").at("total").as_number(), 1.0);
}

/// Collects records under a mutex so a worker-thread WARN can be polled for
/// from the test thread without racing an ostringstream.
class CaptureSink : public obs::Sink {
 public:
  void write(const obs::LogRecord& record) override {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(record.event);
    for (const auto& f : record.fields)
      if (f.key == "spans") spans_seen_ = true;
  }
  std::size_t count(const std::string& event) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& e : events_) n += (e == event) ? 1 : 0;
    return n;
  }
  bool spans_seen() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_seen_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> events_;
  bool spans_seen_ = false;
};

TEST(Service, SlowRequestsEmitOneStructuredWarn) {
  const auto prior_level = obs::Logger::global().level();
  const auto prior_sinks = obs::Logger::global().sinks();
  auto sink = std::make_shared<CaptureSink>();
  obs::Logger::global().set_level(obs::Level::kWarn);
  obs::Logger::global().set_sinks({sink});

  {
    ServerOptions o = quick_options("slow");
    o.slow_ms = 20.0;
    ServerFixture fx(o);
    auto client = Client::connect_unix(o.socket_path);

    // Fast request: stays under the threshold, no WARN.
    ASSERT_TRUE(client.call("ping").at("ok").as_bool());

    io::JsonValue params = io::JsonValue::make_object();
    params.set("delay_ms", io::JsonValue::make_number(60));
    ASSERT_TRUE(client.call("ping", params).at("ok").as_bool());
    // The WARN is written after the reply is sent; the fixture dtor below
    // joins the workers, so by the end of this scope it has landed.
  }

  obs::Logger::global().set_level(prior_level);
  obs::Logger::global().set_sinks(prior_sinks);
  EXPECT_EQ(sink->count("svc_slow_request"), 1u);
  EXPECT_TRUE(sink->spans_seen());
}

TEST(Service, TraceFileRecordsEveryRequest) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("tfc_svc_trace_" + std::to_string(::getpid()) + ".jsonl"))
          .string();
  std::filesystem::remove(path);
  {
    ServerOptions o = quick_options("tracefile");
    o.trace_path = path;
    ServerFixture fx(o);
    auto client = Client::connect_unix(o.socket_path);
    ASSERT_TRUE(
        io::parse_json(client.call_raw(R"({"id": 1, "method": "ping", "trace_id": "t-9"})"))
            .at("ok")
            .as_bool());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto entry = io::parse_json(line);
  EXPECT_EQ(entry.at("trace_id").as_string(), "t-9");
  EXPECT_EQ(entry.at("spans").as_array()[0].at("name").as_string(), "svc.request");
  std::filesystem::remove(path);
}

/// One-shot HTTP GET against 127.0.0.1:port; returns the full response.
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  for (std::size_t sent = 0; sent < request.size();) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
    response.append(chunk, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

TEST(Service, HttpMetricsEndpointServesPrometheusText) {
  ServerOptions o = quick_options("prom");
  o.prom_listen = "127.0.0.1:0";
  ServerFixture fx(o);
  ASSERT_GT(fx.server().prom_port(), 0);

  auto client = Client::connect_unix(o.socket_path);
  ASSERT_TRUE(client.call("ping").at("ok").as_bool());

  const std::string response = http_get(fx.server().prom_port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE svc_requests_received_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("process_uptime_seconds"), std::string::npos);

  const std::string missing = http_get(fx.server().prom_port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  // The scrape endpoint is read-only: the NDJSON side still works after it.
  EXPECT_TRUE(client.call("ping").at("ok").as_bool());
}

io::JsonValue alpha_solve_params(double current) {
  io::JsonValue params = io::JsonValue::make_object();
  params.set("chip", io::JsonValue::make_string("alpha"));
  params.set("current", io::JsonValue::make_number(current));
  return params;
}

TEST(Service, HealthMethodReportsGreenOverUnixAndTcp) {
  ServerOptions o = quick_options("health");
  o.listen = "127.0.0.1:0";
  o.audit_every = 1;        // audit every solve so the test is deterministic
  o.cross_check_every = 1;  // cross-check every audited cache hit
  ServerFixture fx(o);

  auto client = Client::connect_unix(o.socket_path);
  ASSERT_TRUE(client.call("solve", alpha_solve_params(1.5)).at("ok").as_bool());
  ASSERT_TRUE(client.call("solve", alpha_solve_params(1.5)).at("ok").as_bool());

  auto reply = client.call("health");
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const auto& result = reply.at("result");
  EXPECT_EQ(result.at("verdict").as_string(), "green");
  EXPECT_GE(result.at("samples").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(result.at("violations").as_number(), 0.0);
  EXPECT_TRUE(result.at("offenders").as_array().empty());
  ASSERT_EQ(result.at("scopes").as_array().size(), 1u);
  const auto& scope = result.at("scopes").as_array()[0];
  EXPECT_NE(scope.at("scope").as_string().find("alpha"), std::string::npos);
  EXPECT_LT(scope.at("worst_rel_residual").as_number(), 1e-10);
  EXPECT_LT(scope.at("worst_energy_balance_rel").as_number(), 1e-8);
  EXPECT_GE(scope.at("cross_checks").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(scope.at("cross_check_failures").as_number(), 0.0);

  // The same surface over TCP: one service, one monitor, any transport.
  ASSERT_GT(fx.server().tcp_port(), 0);
  auto tcp = Client::connect_tcp("127.0.0.1", fx.server().tcp_port());
  auto tcp_reply = tcp.call("health");
  ASSERT_TRUE(tcp_reply.at("ok").as_bool());
  EXPECT_EQ(tcp_reply.at("result").at("verdict").as_string(), "green");
  EXPECT_EQ(tcp_reply.at("result").at("samples").as_number(),
            result.at("samples").as_number());
}

TEST(Service, InjectedDriftFlipsVerdictAndCountsViolations) {
  ServerOptions o = quick_options("inject");
  o.audit_every = 1;
  o.cross_check_every = 1;
  o.fault_injection = true;
  ServerFixture fx(o);
  auto client = Client::connect_unix(o.socket_path);

  const auto violations0 =
      obs::MetricsRegistry::global().counter("svc.audit.violations").value();

  ASSERT_TRUE(client.call("solve", alpha_solve_params(1.5)).at("ok").as_bool());
  EXPECT_EQ(fx.server().health().verdict(), obs::health::Verdict::kGreen);

  // Perturb the session's solved θ as a stale/corrupted cached factor
  // would: the next audited solve must fail its certificate and the CG
  // cross-check must see the drift.
  io::JsonValue inject = io::JsonValue::make_object();
  inject.set("chip", io::JsonValue::make_string("alpha"));
  inject.set("theta_offset_k", io::JsonValue::make_number(5.0));
  ASSERT_TRUE(client.call("inject", inject).at("ok").as_bool());
  ASSERT_TRUE(client.call("solve", alpha_solve_params(1.5)).at("ok").as_bool());

  auto reply = client.call("health");
  ASSERT_TRUE(reply.at("ok").as_bool());
  const auto& result = reply.at("result");
  EXPECT_EQ(result.at("verdict").as_string(), "red");
  ASSERT_EQ(result.at("offenders").as_array().size(), 1u);
  EXPECT_NE(result.at("offenders").as_array()[0].as_string().find("alpha"),
            std::string::npos);
  EXPECT_GE(result.at("violations").as_number(), 1.0);
  EXPECT_GE(
      obs::MetricsRegistry::global().counter("svc.audit.violations").value(),
      violations0 + 1);

  // The flight recorder carries the failing certificate columns.
  io::JsonValue limit = io::JsonValue::make_object();
  limit.set("limit", io::JsonValue::make_number(8));
  auto recent = client.call("recent", limit);
  ASSERT_TRUE(recent.at("ok").as_bool());
  bool saw_fail = false, saw_pass = false;
  for (const auto& r : recent.at("result").at("requests").as_array()) {
    const io::JsonValue* audit = r.get("audit");
    if (audit == nullptr || !audit->is_string()) continue;
    if (audit->as_string() == "fail") {
      saw_fail = true;
      EXPECT_GT(r.at("rel_residual").as_number(), 1e-6);
    }
    if (audit->as_string() == "pass") {
      saw_pass = true;
      EXPECT_LT(r.at("rel_residual").as_number(), 1e-10);
      EXPECT_LT(r.at("energy_balance_rel").as_number(), 1e-8);
    }
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_pass);
}

TEST(Service, InjectIsRejectedUnlessEnabled) {
  ServerFixture fx(quick_options("noinject"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  io::JsonValue params = io::JsonValue::make_object();
  params.set("chip", io::JsonValue::make_string("alpha"));
  auto reply = client.call("inject", params);
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "bad_request");
  EXPECT_NE(reply.at("error").at("message").as_string().find("disabled"),
            std::string::npos);
}

TEST(Service, AuditDisabledRecordsNothing) {
  ServerOptions o = quick_options("noaudit");
  o.audit_every = 0;
  ServerFixture fx(o);
  auto client = Client::connect_unix(o.socket_path);
  ASSERT_TRUE(client.call("solve", alpha_solve_params(1.5)).at("ok").as_bool());

  auto reply = client.call("health");
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("result").at("verdict").as_string(), "green");
  EXPECT_DOUBLE_EQ(reply.at("result").at("samples").as_number(), 0.0);
  EXPECT_TRUE(reply.at("result").at("scopes").as_array().empty());
}

// --- streaming `simulate` ---------------------------------------------------

/// One streamed exchange: send a `simulate` request, collect every non-final
/// frame line, and return the final reply. Frames are NDJSON objects carrying
/// {"id", "frame", "final": false, "sim": {...}}.
struct StreamedRun {
  std::vector<io::JsonValue> frames;
  io::JsonValue final;
};

StreamedRun run_simulate(Client& client, const io::JsonValue& params, double id = 7.0,
                         double deadline_ms = 0.0) {
  io::JsonValue request = io::JsonValue::make_object();
  request.set("id", io::JsonValue::make_number(id));
  request.set("method", io::JsonValue::make_string("simulate"));
  request.set("params", params);
  if (deadline_ms > 0.0) {
    request.set("deadline_ms", io::JsonValue::make_number(deadline_ms));
  }
  client.send_raw(request.dump());

  StreamedRun run;
  while (true) {
    io::JsonValue line = io::parse_json(client.read_line());
    if (line.has("ok")) {
      run.final = std::move(line);
      return run;
    }
    run.frames.push_back(std::move(line));
  }
}

io::JsonValue simulate_params(double steps, double frame_every) {
  io::JsonValue params = io::JsonValue::make_object();
  params.set("chip", io::JsonValue::make_string("alpha"));
  params.set("steps", io::JsonValue::make_number(steps));
  params.set("frame_every", io::JsonValue::make_number(frame_every));
  return params;
}

TEST(Service, SimulateStreamsSeqNumberedFramesOverUnix) {
  ServerFixture fx(quick_options("simulate"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  auto run = run_simulate(client, simulate_params(40, 10));

  // Frames at steps 0, 10, 20, 30 and the final step 39 — all emitted before
  // the final reply, each echoing the request id, seq-numbered from 0.
  ASSERT_EQ(run.frames.size(), 5u);
  for (std::size_t k = 0; k < run.frames.size(); ++k) {
    const auto& f = run.frames[k];
    EXPECT_DOUBLE_EQ(f.at("id").as_number(), 7.0);
    EXPECT_FALSE(f.at("final").as_bool());
    EXPECT_DOUBLE_EQ(f.at("frame").as_number(), double(k));
    EXPECT_DOUBLE_EQ(f.at("sim").at("seq").as_number(), double(k));
    EXPECT_GT(f.at("sim").at("peak_k").as_number(), 300.0);
  }
  EXPECT_DOUBLE_EQ(run.frames.back().at("sim").at("step").as_number(), 39.0);

  // The final reply is the DTM summary.
  ASSERT_TRUE(run.final.at("ok").as_bool()) << run.final.dump();
  const auto& result = run.final.at("result");
  EXPECT_EQ(result.at("chip").as_string(), "alpha");
  EXPECT_DOUBLE_EQ(result.at("summary").at("frames").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(result.at("summary").at("steps").as_number(), 40.0);
  EXPECT_FALSE(result.at("summary").at("aborted").as_bool());

  // The connection survives the stream, and the flight record counts frames.
  auto recent = client.call("recent");
  ASSERT_TRUE(recent.at("ok").as_bool());
  bool found = false;
  for (const auto& r : recent.at("result").at("requests").as_array()) {
    if (r.string_or("method", "") == "simulate") {
      EXPECT_DOUBLE_EQ(r.at("frames").as_number(), 5.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Service, SimulateStreamsOverTcp) {
  ServerOptions o;
  o.listen = "127.0.0.1:0";
  o.workers = 1;
  ServerFixture fx(o);
  auto client = Client::connect_tcp("127.0.0.1", fx.server().tcp_port());

  auto run = run_simulate(client, simulate_params(20, 10), /*id=*/3.0);
  ASSERT_EQ(run.frames.size(), 3u);  // steps 0, 10, 19
  EXPECT_DOUBLE_EQ(run.frames[0].at("id").as_number(), 3.0);
  ASSERT_TRUE(run.final.at("ok").as_bool()) << run.final.dump();
  EXPECT_DOUBLE_EQ(run.final.at("result").at("summary").at("frames").as_number(), 3.0);
}

TEST(Service, SimulateFramesByteIdenticalAcrossWorkerCounts) {
  auto render = [](std::size_t workers, const std::string& tag) {
    ServerOptions o = quick_options(tag);
    o.workers = workers;
    ServerFixture fx(o);
    auto client = Client::connect_unix(o.socket_path);
    io::JsonValue params = simulate_params(30, 5);
    params.set("tiles", io::JsonValue::make_bool(true));
    auto run = run_simulate(client, params);
    std::string text;
    for (const auto& f : run.frames) {
      text += f.at("sim").dump();
      text += '\n';
    }
    text += run.final.at("result").dump();
    return text;
  };
  EXPECT_EQ(render(1, "det1"), render(4, "det4"));
}

TEST(Service, SimulateDeadlineExpiresMidStream) {
  ServerFixture fx(quick_options("simdeadline"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  // Warm the session cache so the deadline budget is spent streaming, not
  // designing the deployment.
  ASSERT_EQ(run_simulate(client, simulate_params(1, 1)).frames.size(), 1u);

  // 100k steps streamed one frame per step cannot finish in 300 ms: the
  // stream stops mid-run and the final line is a structured deadline error.
  auto run = run_simulate(client, simulate_params(100000, 1), /*id=*/9.0,
                          /*deadline_ms=*/300.0);
  EXPECT_FALSE(run.final.at("ok").as_bool());
  EXPECT_EQ(run.final.at("error").at("code").as_string(), "deadline_exceeded");
  EXPECT_DOUBLE_EQ(run.final.at("id").as_number(), 9.0);
  EXPECT_NE(run.final.at("error").at("message").as_string().find("mid-stream"),
            std::string::npos);
  // It streamed before it died, and every frame stayed seq-consistent.
  EXPECT_GT(run.frames.size(), 0u);
  for (std::size_t k = 0; k < run.frames.size(); ++k) {
    EXPECT_DOUBLE_EQ(run.frames[k].at("frame").as_number(), double(k));
  }
}

TEST(Service, SimulateValidatesParams) {
  ServerFixture fx(quick_options("simbad"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  auto bad_steps = run_simulate(client, simulate_params(0, 10));
  EXPECT_TRUE(bad_steps.frames.empty());
  EXPECT_FALSE(bad_steps.final.at("ok").as_bool());
  EXPECT_EQ(bad_steps.final.at("error").at("code").as_string(), "bad_request");

  io::JsonValue bad_dt = simulate_params(10, 5);
  bad_dt.set("dt", io::JsonValue::make_number(-1.0));
  auto run = run_simulate(client, bad_dt);
  EXPECT_FALSE(run.final.at("ok").as_bool());
  EXPECT_EQ(run.final.at("error").at("code").as_string(), "bad_request");
}

}  // namespace
}  // namespace tfc::svc
