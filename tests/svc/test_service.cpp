/// End-to-end tests of the solver service: a real Server on a temp unix
/// socket (plus TCP), driven through the blocking Client. The solver-heavy
/// paths use the small built-in chips so the suite stays fast; the
/// scheduling paths (deadline, overload, drain) use `ping` with `delay_ms`
/// so they are deterministic without burning CPU.
#include "svc/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "obs/obs.h"
#include "svc/client.h"

namespace tfc::svc {
namespace {

std::string temp_socket_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("tfc_svc_test_" + tag + "_" + std::to_string(::getpid()) + ".sock"))
      .string();
}

/// Server running on a background thread for the duration of a test.
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options) : server_(std::move(options)) {
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerFixture() {
    server_.request_stop();
    thread_.join();
  }

  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
};

ServerOptions quick_options(const std::string& tag) {
  ServerOptions o;
  o.socket_path = temp_socket_path(tag);
  o.workers = 2;
  o.queue_capacity = 16;
  o.cache_capacity = 4;
  return o;
}

TEST(Service, PingPong) {
  ServerFixture fx(quick_options("ping"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = client.call("ping");
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(reply.at("result").at("pong").as_bool());
  EXPECT_DOUBLE_EQ(reply.at("id").as_number(), 1.0);
}

TEST(Service, TcpListenerWorks) {
  ServerOptions o;
  o.listen = "127.0.0.1:0";
  o.workers = 1;
  ServerFixture fx(o);
  ASSERT_GT(fx.server().tcp_port(), 0);
  auto client = Client::connect_tcp("127.0.0.1", fx.server().tcp_port());
  auto reply = client.call("ping");
  EXPECT_TRUE(reply.at("ok").as_bool());
}

TEST(Service, MalformedLineGetsParseError) {
  ServerFixture fx(quick_options("parse"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = io::parse_json(client.call_raw("this is not json"));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "parse_error");
  EXPECT_TRUE(reply.at("id").is_null());
  // The connection survives a bad line.
  EXPECT_TRUE(client.call("ping").at("ok").as_bool());
}

TEST(Service, UnknownMethodNamed) {
  ServerFixture fx(quick_options("method"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = client.call("frobnicate");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "unknown_method");
  EXPECT_NE(reply.at("error").at("message").as_string().find("frobnicate"),
            std::string::npos);
}

TEST(Service, SolveServedFromSessionCacheOnRepeat) {
  ServerFixture fx(quick_options("cache"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  const auto hits_before = fx.server().cache().hits();

  io::JsonValue params = io::JsonValue::make_object();
  params.set("chip", io::JsonValue::make_string("alpha"));
  auto first = client.call("solve", params);
  ASSERT_TRUE(first.at("ok").as_bool()) << first.dump();
  auto second = client.call("solve", params);
  ASSERT_TRUE(second.at("ok").as_bool());

  EXPECT_GE(fx.server().cache().hits() - hits_before, 1u);
  // Identical query → identical answer (the cache is semantically invisible).
  EXPECT_EQ(first.at("result").dump(), second.at("result").dump());
  EXPECT_GT(first.at("result").at("peak_celsius").as_number(), 20.0);
  EXPECT_GT(first.at("result").at("tec_count").as_number(), 0.0);
}

TEST(Service, DesignMatchesCliSerialization) {
  ServerFixture fx(quick_options("design"));
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = client.call("design");
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const auto& result = reply.at("result");
  EXPECT_EQ(result.at("chip").as_string(), "alpha");
  EXPECT_TRUE(result.at("success").as_bool());
  EXPECT_EQ(result.at("deployment").as_array().size(), 12u);
}

TEST(Service, RunawayAndSweep) {
  ServerFixture fx(quick_options("sweep"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  auto runaway = client.call("runaway");
  ASSERT_TRUE(runaway.at("ok").as_bool());
  const double lm = runaway.at("result").at("lambda_m_a").as_number();
  EXPECT_GT(lm, 0.0);

  io::JsonValue params = io::JsonValue::make_object();
  params.set("points", io::JsonValue::make_number(5));
  auto sweep = client.call("sweep", params);
  ASSERT_TRUE(sweep.at("ok").as_bool());
  const auto& currents = sweep.at("result").at("current_a").as_array();
  const auto& peaks = sweep.at("result").at("peak_celsius").as_array();
  ASSERT_EQ(currents.size(), 6u);
  ASSERT_EQ(peaks.size(), 6u);
  EXPECT_DOUBLE_EQ(sweep.at("result").at("lambda_m_a").as_number(), lm);
}

TEST(Service, BadParamsAreStructuredErrors) {
  ServerFixture fx(quick_options("badparams"));
  auto client = Client::connect_unix(fx.server().options().socket_path);

  io::JsonValue params = io::JsonValue::make_object();
  params.set("chip", io::JsonValue::make_string("pentium"));
  auto reply = client.call("solve", params);
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "bad_request");
  EXPECT_NE(reply.at("error").at("message").as_string().find("pentium"),
            std::string::npos);
}

TEST(Service, ExpiredDeadlineGetsStructuredTimeout) {
  ServerOptions o = quick_options("deadline");
  o.workers = 1;  // a single worker so a slow request blocks the queue
  ServerFixture fx(o);

  // Occupy the only worker for ~400 ms.
  std::thread blocker([&] {
    auto slow = Client::connect_unix(fx.server().options().socket_path);
    io::JsonValue params = io::JsonValue::make_object();
    params.set("delay_ms", io::JsonValue::make_number(400));
    (void)slow.call("ping", params);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // This request's 50 ms deadline expires while it waits in the queue.
  auto client = Client::connect_unix(fx.server().options().socket_path);
  auto reply = client.call("ping", io::JsonValue::make_null(), /*deadline_ms=*/50);
  blocker.join();
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "deadline_exceeded");
  EXPECT_DOUBLE_EQ(reply.at("error").at("status").as_number(), 408.0);
}

TEST(Service, FullQueueShedsLoadInsteadOfBlocking) {
  ServerOptions o = quick_options("overload");
  o.workers = 1;
  o.queue_capacity = 1;
  ServerFixture fx(o);

  io::JsonValue slow_params = io::JsonValue::make_object();
  slow_params.set("delay_ms", io::JsonValue::make_number(600));

  // First request occupies the worker; second fills the 1-slot queue.
  std::thread t1([&] {
    auto c = Client::connect_unix(fx.server().options().socket_path);
    EXPECT_TRUE(c.call("ping", slow_params).at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread t2([&] {
    auto c = Client::connect_unix(fx.server().options().socket_path);
    EXPECT_TRUE(c.call("ping", slow_params).at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Third request finds the queue full and is rejected immediately.
  auto client = Client::connect_unix(fx.server().options().socket_path);
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = client.call("ping");
  const double waited_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  t1.join();
  t2.join();
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "overloaded");
  EXPECT_DOUBLE_EQ(reply.at("error").at("status").as_number(), 429.0);
  EXPECT_LT(waited_ms, 500.0);  // shed, not queued behind ~1.2 s of work
}

TEST(Service, ShutdownRequestDrainsAndStops) {
  ServerOptions o = quick_options("shutdown");
  o.workers = 1;
  Server server(o);
  std::thread runner([&] { server.run(); });

  // Queue a slow request, then ask for shutdown: the slow reply must still
  // arrive (drain-then-stop), and run() must return.
  std::thread slow_caller([&] {
    auto c = Client::connect_unix(o.socket_path);
    io::JsonValue params = io::JsonValue::make_object();
    params.set("delay_ms", io::JsonValue::make_number(300));
    auto reply = c.call("ping", params);
    EXPECT_TRUE(reply.at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto client = Client::connect_unix(o.socket_path);
  auto reply = client.call("shutdown");
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(reply.at("result").at("stopping").as_bool());

  runner.join();
  slow_caller.join();
  // The socket is gone after shutdown.
  EXPECT_FALSE(std::filesystem::exists(o.socket_path));
  EXPECT_THROW(Client::connect_unix(o.socket_path), std::runtime_error);
}

TEST(Service, StatsReportsCacheAndLimits) {
  ServerOptions o = quick_options("stats");
  o.queue_capacity = 5;
  o.cache_capacity = 3;
  ServerFixture fx(o);
  auto client = Client::connect_unix(o.socket_path);
  auto reply = client.call("stats");
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(reply.at("result").at("queue_capacity").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(reply.at("result").at("cache").at("capacity").as_number(), 3.0);
}

}  // namespace
}  // namespace tfc::svc
