#include "svc/session_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tfc::svc {
namespace {

SessionKey key_for(const std::string& chip, double limit = 85.0) {
  SessionKey k;
  k.chip = chip;
  k.theta_limit_celsius = limit;
  return k;
}

/// A builder that fabricates an empty Session and counts invocations.
struct CountingBuilder {
  std::atomic<int> builds{0};

  SessionCache::Builder fn() {
    return [this](const SessionKey& k) {
      builds.fetch_add(1);
      auto s = std::make_shared<Session>();
      s->key = k;
      return std::shared_ptr<const Session>(s);
    };
  }
};

TEST(SessionCache, KeyStringDistinguishesInputs) {
  EXPECT_NE(key_for("alpha", 85.0).to_string(), key_for("alpha", 86.0).to_string());
  EXPECT_NE(key_for("alpha").to_string(), key_for("hc1").to_string());
  EXPECT_EQ(key_for("alpha").to_string(), key_for("alpha").to_string());
}

TEST(SessionCache, RepeatLookupIsAHit) {
  SessionCache cache(4);
  CountingBuilder builder;
  const auto h0 = cache.hits();
  const auto m0 = cache.misses();

  auto a = cache.get_or_build(key_for("alpha"), builder.fn());
  auto b = cache.get_or_build(key_for("alpha"), builder.fn());
  EXPECT_EQ(builder.builds.load(), 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits() - h0, 1u);
  EXPECT_EQ(cache.misses() - m0, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SessionCache, EvictsLeastRecentlyUsed) {
  SessionCache cache(2);
  CountingBuilder builder;
  const auto e0 = cache.evictions();

  (void)cache.get_or_build(key_for("alpha"), builder.fn());  // [alpha]
  (void)cache.get_or_build(key_for("hc1"), builder.fn());    // [hc1, alpha]
  (void)cache.get_or_build(key_for("alpha"), builder.fn());  // hit → [alpha, hc1]
  (void)cache.get_or_build(key_for("hc2"), builder.fn());    // evicts hc1
  EXPECT_EQ(cache.evictions() - e0, 1u);
  EXPECT_EQ(cache.size(), 2u);

  // hc1 was evicted: a re-request rebuilds; alpha is still cached.
  const int builds_before = builder.builds.load();
  (void)cache.get_or_build(key_for("alpha"), builder.fn());
  EXPECT_EQ(builder.builds.load(), builds_before);
  (void)cache.get_or_build(key_for("hc1"), builder.fn());
  EXPECT_EQ(builder.builds.load(), builds_before + 1);
}

TEST(SessionCache, ZeroCapacityAlwaysBuilds) {
  SessionCache cache(0);
  CountingBuilder builder;
  (void)cache.get_or_build(key_for("alpha"), builder.fn());
  (void)cache.get_or_build(key_for("alpha"), builder.fn());
  EXPECT_EQ(builder.builds.load(), 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SessionCache, FailedBuildPropagatesAndRetries) {
  SessionCache cache(4);
  int calls = 0;
  auto failing_then_ok = [&](const SessionKey& k) -> std::shared_ptr<const Session> {
    if (++calls == 1) throw std::runtime_error("transient failure");
    auto s = std::make_shared<Session>();
    s->key = k;
    return s;
  };
  EXPECT_THROW((void)cache.get_or_build(key_for("alpha"), failing_then_ok),
               std::runtime_error);
  // The poisoned entry was dropped; the next lookup rebuilds successfully.
  auto s = cache.get_or_build(key_for("alpha"), failing_then_ok);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(calls, 2);
}

TEST(SessionCache, ConcurrentRequestsBuildOnce) {
  SessionCache cache(4);
  CountingBuilder builder;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const Session>> results(8);
  for (std::size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&, t] {
      results[t] = cache.get_or_build(key_for("alpha"), builder.fn());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builder.builds.load(), 1);
  for (const auto& r : results) EXPECT_EQ(r.get(), results[0].get());
}

}  // namespace
}  // namespace tfc::svc
