/// End-to-end determinism: the full design pipeline must emit byte-identical
/// JSON for any --threads value. This is the contract that makes the
/// parallel layer safe to enable by default.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "par/thread_pool.h"

namespace tfc {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string design_json(const std::string& threads, const std::string& path) {
  std::ostringstream out, err;
  const int code = cli::run_cli(
      {"design", "--chip", "alpha", "--threads", threads, "--json", path}, out, err);
  EXPECT_EQ(code, 0) << err.str();
  return slurp(path);
}

std::string design_json_backend(const std::string& threads,
                                const std::string& backend,
                                const std::string& path) {
  std::ostringstream out, err;
  const int code = cli::run_cli({"design", "--chip", "alpha", "--threads", threads,
                                 "--backend", backend, "--json", path},
                                out, err);
  EXPECT_EQ(code, 0) << err.str();
  return slurp(path);
}

TEST(ParDeterminism, DesignJsonIsByteIdenticalAcrossThreadCounts) {
  const std::string f1 = "design_threads1.json";
  const std::string f8 = "design_threads8.json";
  const std::string one = design_json("1", f1);
  const std::string eight = design_json("8", f8);
  std::remove(f1.c_str());
  std::remove(f8.c_str());
  par::ThreadPool::set_global_threads(0);

  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
}

TEST(ParDeterminism, DesignJsonIsByteIdenticalAcrossEngineBackends) {
  // The engine's design probe path is pinned to the direct factorization, so
  // the selected point-solve backend must not perturb the output either.
  const std::string f = "design_backend.json";
  const std::string reference = design_json("4", f);
  for (const char* backend : {"cholesky", "cg"}) {
    for (const char* threads : {"1", "8"}) {
      EXPECT_EQ(design_json_backend(threads, backend, f), reference)
          << backend << " threads=" << threads;
    }
  }
  std::remove(f.c_str());
  par::ThreadPool::set_global_threads(0);

  ASSERT_FALSE(reference.empty());
}

}  // namespace
}  // namespace tfc
