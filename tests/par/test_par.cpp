#include "par/parallel.h"
#include "par/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace tfc::par {
namespace {

/// Restores the default global pool sizing when a test overrides it.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { ThreadPool::set_global_threads(0); }
};

TEST(ThreadPool, StartupAndShutdown) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<std::size_t> count{0};
  const std::function<void(std::size_t)> fn = [&](std::size_t) { ++count; };
  pool.run_indexed(1000, fn);
  EXPECT_EQ(count.load(), 1000u);
  // Destructor joins all workers; a hang here trips the ctest TIMEOUT.
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t count = 0;
  const std::function<void(std::size_t)> fn = [&](std::size_t) { ++count; };
  pool.run_indexed(10, fn);
  EXPECT_EQ(count, 10u);
}

TEST(ThreadPool, ManyJobsReuseTheSameWorkers) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  const std::function<void(std::size_t)> fn = [&](std::size_t) { ++total; };
  for (int job = 0; job < 50; ++job) pool.run_indexed(17, fn);
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  const std::function<void(std::size_t)> fn = [](std::size_t) {
    FAIL() << "must not be called";
  };
  pool.run_indexed(0, fn);
}

TEST(ThreadPool, GlobalSizeOverride) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(5);
  EXPECT_EQ(ThreadPool::global_thread_count(), 5u);
  EXPECT_EQ(ThreadPool::global().size(), 5u);
  ThreadPool::set_global_threads(2);
  EXPECT_EQ(ThreadPool::global().size(), 2u);
}

TEST(ParallelMap, ResultsAreInIterationOrder) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(8);
  const auto squares =
      parallel_map(1000, [](std::size_t i) { return double(i) * double(i); });
  ASSERT_EQ(squares.size(), 1000u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], double(i) * double(i)) << i;
  }
}

TEST(ParallelMap, SameResultForAnyPoolSize) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(1);
  const auto serial = parallel_map(257, [](std::size_t i) { return 3 * i + 1; });
  ThreadPool::set_global_threads(8);
  const auto parallel = parallel_map(257, [](std::size_t i) { return 3 * i + 1; });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelMap, SupportsMoveOnlyResults) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(4);
  auto boxes =
      parallel_map(64, [](std::size_t i) { return std::make_unique<std::size_t>(i); });
  for (std::size_t i = 0; i < boxes.size(); ++i) EXPECT_EQ(*boxes[i], i);
}

TEST(ParallelFor, LowestIndexExceptionWins) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(8);
  std::atomic<std::size_t> executed{0};
  try {
    parallel_for(100, [&](std::size_t i) {
      ++executed;
      if (i % 7 == 3) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");  // lowest failing index, any pool size
  }
  // All iterations still ran to completion.
  EXPECT_EQ(executed.load(), 100u);
}

TEST(ParallelFor, SerialPathKeepsSameExceptionContract) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(1);
  try {
    parallel_for(100, [&](std::size_t i) {
      if (i % 7 == 3) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(ParallelFor, NestedSubmissionDoesNotDeadlock) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(4);
  constexpr std::size_t kOuter = 16, kInner = 16;
  std::vector<int> out(kOuter * kInner, -1);
  parallel_for(kOuter, [&](std::size_t i) {
    // Inner ranges run inline on pool workers (the deadlock guard) and as a
    // normal nested job on the submitting thread; both must complete.
    parallel_for(kInner, [&](std::size_t j) { out[i * kInner + j] = int(i + j); });
  });
  for (std::size_t i = 0; i < kOuter; ++i) {
    for (std::size_t j = 0; j < kInner; ++j) {
      EXPECT_EQ(out[i * kInner + j], int(i + j));
    }
  }
}

TEST(ParallelFor, InWorkerFlagIsVisibleInsideTasks) {
  GlobalThreadsGuard guard;
  EXPECT_FALSE(ThreadPool::in_worker());
  ThreadPool::set_global_threads(4);
  std::atomic<std::size_t> on_workers{0};
  parallel_for(64, [&](std::size_t) {
    if (ThreadPool::in_worker()) ++on_workers;
  });
  // The submitting thread drains too, so not all 64 need be on workers; the
  // flag itself must still be false here afterwards.
  EXPECT_FALSE(ThreadPool::in_worker());
  EXPECT_LE(on_workers.load(), 64u);
}

TEST(ParallelFor, ReductionInIndexOrderIsDeterministic) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(8);
  // Canonical deterministic-reduction pattern: map into slots, reduce in
  // index order afterwards. FP summation order is then fixed by construction.
  const auto terms = parallel_map(10000, [](std::size_t i) {
    return 1.0 / double(i + 1);
  });
  const double sum1 = std::accumulate(terms.begin(), terms.end(), 0.0);
  ThreadPool::set_global_threads(3);
  const auto terms2 = parallel_map(10000, [](std::size_t i) {
    return 1.0 / double(i + 1);
  });
  const double sum2 = std::accumulate(terms2.begin(), terms2.end(), 0.0);
  EXPECT_EQ(sum1, sum2);  // bitwise equal, not just approximately
}

}  // namespace
}  // namespace tfc::par
