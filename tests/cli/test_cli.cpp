#include "cli/cli.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tfc::cli {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun r;
  r.code = run_cli(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(Cli, HelpPrintsUsage) {
  auto r = run({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: tfcool"), std::string::npos);
}

TEST(Cli, MissingCommandIsUsageError) {
  auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("missing command"), std::string::npos);
}

TEST(Cli, UnknownCommandIsUsageError) {
  auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, OptionMissingValueIsUsageError) {
  auto r = run({"design", "--limit"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("requires a value"), std::string::npos);
}

TEST(Cli, UnknownChipReported) {
  auto r = run({"design", "--chip", "pentium"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown chip"), std::string::npos);
}

TEST(Cli, DesignAlphaSucceeds) {
  auto r = run({"design", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("alpha"), std::string::npos);
  EXPECT_NE(r.out.find("ok"), std::string::npos);
}

TEST(Cli, DesignMapFlagPrintsGrid) {
  auto r = run({"design", "--chip", "alpha", "--map", "--no-full-cover"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find('#'), std::string::npos);
}

TEST(Cli, DesignJsonWritesFile) {
  const auto path = std::filesystem::temp_directory_path() / "tfcool_cli_test.json";
  std::filesystem::remove(path);
  auto r = run({"design", "--chip", "hc1", "--no-full-cover", "--json", path.string()});
  EXPECT_EQ(r.code, 0);
  std::ifstream jf(path);
  ASSERT_TRUE(jf.good());
  std::stringstream buf;
  buf << jf.rdbuf();
  EXPECT_NE(buf.str().find("\"chip\": \"hc1\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Cli, RunawayReportsLambda) {
  auto r = run({"runaway", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("lambda_m"), std::string::npos);
}

TEST(Cli, ValidateWithinPaperBound) {
  auto r = run({"validate", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("max |diff|"), std::string::npos);
}

TEST(Cli, SweepEmitsCsv) {
  auto r = run({"sweep", "--chip", "alpha", "--points", "5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("current_a,peak_degc,ptec_w"), std::string::npos);
  // Header + 6 data rows.
  EXPECT_EQ(std::count(r.out.begin(), r.out.end(), '\n'), 7);
}

TEST(Cli, SensitivityEmitsCsv) {
  auto r = run({"sensitivity", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("parameter,d_peak_per_rel"), std::string::npos);
  EXPECT_NE(r.out.find("seebeck,"), std::string::npos);
  EXPECT_NE(r.out.find("g_cold_contact,"), std::string::npos);
}

TEST(Cli, FlpRequiresPtrace) {
  auto r = run({"design", "--flp", "/nonexistent.flp"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--ptrace"), std::string::npos);
}

TEST(Cli, MissingFlpFileReported) {
  auto r = run({"design", "--flp", "/nonexistent.flp", "--ptrace", "/nonexistent.ptrace"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, ImportedChipDesign) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path();
  const auto flp = dir / "tfcool_cli_test.flp";
  const auto ptrace = dir / "tfcool_cli_test.ptrace";
  {
    std::ofstream f(flp);
    f << "CORE 3e-3 3e-3 0 3e-3\nREST 3e-3 3e-3 3e-3 3e-3\nBOT 6e-3 3e-3 0 0\n";
    std::ofstream t(ptrace);
    t << "CORE REST BOT\n9.0 3.0 5.0\n8.0 3.5 4.0\n";
  }
  auto r = run({"design", "--flp", flp.string(), "--ptrace", ptrace.string(),
                "--no-full-cover"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ok"), std::string::npos);
  fs::remove(flp);
  fs::remove(ptrace);
}

}  // namespace
}  // namespace tfc::cli
