#include "cli/cli.h"

#include <gtest/gtest.h>

#include "obs/obs.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tfc::cli {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun r;
  r.code = run_cli(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(Cli, HelpPrintsUsage) {
  auto r = run({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: tfcool"), std::string::npos);
}

TEST(Cli, MissingCommandIsUsageError) {
  auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("missing command"), std::string::npos);
}

TEST(Cli, UnknownCommandIsUsageError) {
  auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, OptionMissingValueIsUsageError) {
  auto r = run({"design", "--limit"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("requires a value"), std::string::npos);
}

TEST(Cli, UnknownChipReported) {
  auto r = run({"design", "--chip", "pentium"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown chip"), std::string::npos);
}

TEST(Cli, DesignAlphaSucceeds) {
  auto r = run({"design", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("alpha"), std::string::npos);
  EXPECT_NE(r.out.find("ok"), std::string::npos);
}

TEST(Cli, DesignMapFlagPrintsGrid) {
  auto r = run({"design", "--chip", "alpha", "--map", "--no-full-cover"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find('#'), std::string::npos);
}

TEST(Cli, DesignJsonWritesFile) {
  const auto path = std::filesystem::temp_directory_path() / "tfcool_cli_test.json";
  std::filesystem::remove(path);
  auto r = run({"design", "--chip", "hc1", "--no-full-cover", "--json", path.string()});
  EXPECT_EQ(r.code, 0);
  std::ifstream jf(path);
  ASSERT_TRUE(jf.good());
  std::stringstream buf;
  buf << jf.rdbuf();
  EXPECT_NE(buf.str().find("\"chip\": \"hc1\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Cli, RunawayReportsLambda) {
  auto r = run({"runaway", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("lambda_m"), std::string::npos);
}

TEST(Cli, ValidateWithinPaperBound) {
  auto r = run({"validate", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("max |diff|"), std::string::npos);
}

TEST(Cli, SweepEmitsCsv) {
  auto r = run({"sweep", "--chip", "alpha", "--points", "5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("current_a,peak_degc,ptec_w"), std::string::npos);
  // Header + 6 data rows.
  EXPECT_EQ(std::count(r.out.begin(), r.out.end(), '\n'), 7);
}

TEST(Cli, SensitivityEmitsCsv) {
  auto r = run({"sensitivity", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("parameter,d_peak_per_rel"), std::string::npos);
  EXPECT_NE(r.out.find("seebeck,"), std::string::npos);
  EXPECT_NE(r.out.find("g_cold_contact,"), std::string::npos);
}

TEST(Cli, FlpRequiresPtrace) {
  auto r = run({"design", "--flp", "/nonexistent.flp"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--ptrace"), std::string::npos);
}

TEST(Cli, MissingFlpFileReported) {
  auto r = run({"design", "--flp", "/nonexistent.flp", "--ptrace", "/nonexistent.ptrace"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, VersionPrintsBuildInfo) {
  auto r = run({"version"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("tfcool"), std::string::npos);
  EXPECT_NE(r.out.find("compiler:"), std::string::npos);
  EXPECT_NE(r.out.find("obs compile-time level:"), std::string::npos);
}

TEST(Cli, BadLogLevelIsUsageError) {
  auto r = run({"design", "--chip", "alpha", "--log-level", "shouty"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown log level"), std::string::npos);
}

TEST(Cli, TraceAndMetricsOutWriteJson) {
  namespace fs = std::filesystem;
  const auto trace = fs::temp_directory_path() / "tfcool_cli_test_trace.json";
  const auto metrics = fs::temp_directory_path() / "tfcool_cli_test_metrics.json";
  fs::remove(trace);
  fs::remove(metrics);
  auto r = run({"design", "--chip", "alpha", "--no-full-cover", "--trace-out",
                trace.string(), "--metrics-out", metrics.string()});
  EXPECT_EQ(r.code, 0) << r.err;

  std::ifstream tf(trace);
  ASSERT_TRUE(tf.good());
  std::stringstream tbuf;
  tbuf << tf.rdbuf();
  EXPECT_NE(tbuf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(tbuf.str().find("\"name\":\"design\""), std::string::npos);
  EXPECT_NE(tbuf.str().find("\"name\":\"greedy_deploy\""), std::string::npos);
  EXPECT_NE(tbuf.str().find("\"ph\":\"X\""), std::string::npos);

  std::ifstream mf(metrics);
  ASSERT_TRUE(mf.good());
  std::stringstream mbuf;
  mbuf << mf.rdbuf();
  EXPECT_NE(mbuf.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(mbuf.str().find("\"cg.iterations\""), std::string::npos);
  EXPECT_NE(mbuf.str().find("\"greedy.candidate_evaluations\""), std::string::npos);

  fs::remove(trace);
  fs::remove(metrics);
}

TEST(Cli, TracingIsScopedToOneInvocation) {
  namespace fs = std::filesystem;
  const auto trace = fs::temp_directory_path() / "tfcool_cli_test_trace2.json";
  fs::remove(trace);
  auto r1 = run({"runaway", "--chip", "alpha", "--trace-out", trace.string()});
  EXPECT_EQ(r1.code, 0);
  // A following invocation without --trace-out must not collect spans.
  auto r2 = run({"runaway", "--chip", "alpha"});
  EXPECT_EQ(r2.code, 0);
  EXPECT_FALSE(tfc::obs::TraceCollector::global().enabled());
  EXPECT_EQ(tfc::obs::TraceCollector::global().event_count(), 0u);
  fs::remove(trace);
}

TEST(Cli, ImportedChipDesign) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path();
  const auto flp = dir / "tfcool_cli_test.flp";
  const auto ptrace = dir / "tfcool_cli_test.ptrace";
  {
    std::ofstream f(flp);
    f << "CORE 3e-3 3e-3 0 3e-3\nREST 3e-3 3e-3 3e-3 3e-3\nBOT 6e-3 3e-3 0 0\n";
    std::ofstream t(ptrace);
    t << "CORE REST BOT\n9.0 3.0 5.0\n8.0 3.5 4.0\n";
  }
  auto r = run({"design", "--flp", flp.string(), "--ptrace", ptrace.string(),
                "--no-full-cover"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ok"), std::string::npos);
  fs::remove(flp);
  fs::remove(ptrace);
}

}  // namespace
}  // namespace tfc::cli
