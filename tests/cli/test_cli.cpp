#include "cli/cli.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include "io/json.h"
#include "obs/obs.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

namespace tfc::cli {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun r;
  r.code = run_cli(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(Cli, HelpPrintsUsage) {
  auto r = run({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: tfcool"), std::string::npos);
}

TEST(Cli, MissingCommandIsUsageError) {
  auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("missing command"), std::string::npos);
}

TEST(Cli, UnknownCommandIsUsageError) {
  auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, OptionMissingValueIsUsageError) {
  auto r = run({"design", "--limit"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("requires a value"), std::string::npos);
}

TEST(Cli, UnknownChipReported) {
  auto r = run({"design", "--chip", "pentium"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown chip"), std::string::npos);
}

TEST(Cli, DesignAlphaSucceeds) {
  auto r = run({"design", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("alpha"), std::string::npos);
  EXPECT_NE(r.out.find("ok"), std::string::npos);
}

TEST(Cli, DesignMapFlagPrintsGrid) {
  auto r = run({"design", "--chip", "alpha", "--map", "--no-full-cover"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find('#'), std::string::npos);
}

TEST(Cli, DesignJsonWritesFile) {
  const auto path = std::filesystem::temp_directory_path() / "tfcool_cli_test.json";
  std::filesystem::remove(path);
  auto r = run({"design", "--chip", "hc1", "--no-full-cover", "--json", path.string()});
  EXPECT_EQ(r.code, 0);
  std::ifstream jf(path);
  ASSERT_TRUE(jf.good());
  std::stringstream buf;
  buf << jf.rdbuf();
  EXPECT_NE(buf.str().find("\"chip\": \"hc1\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Cli, RunawayReportsLambda) {
  auto r = run({"runaway", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("lambda_m"), std::string::npos);
}

/// Parse the full-precision λ_m out of `runaway` stdout ("lambda_m = X A").
double lambda_m_of(const std::string& out) {
  const auto pos = out.find("lambda_m = ");
  EXPECT_NE(pos, std::string::npos) << out;
  return std::stod(out.substr(pos + 11));
}

TEST(Cli, RunawayMethodFlagCrossValidates) {
  // The same comparison the CI smoke job runs: every eigensolver must report
  // the same λ_m to 1e-8 relative.
  auto sparse = run({"runaway", "--chip", "alpha", "--runaway-method", "sparse"});
  auto schur = run({"runaway", "--chip", "alpha", "--runaway-method", "schur"});
  auto dense = run({"runaway", "--chip", "alpha", "--runaway-method", "dense"});
  ASSERT_EQ(sparse.code, 0) << sparse.err;
  ASSERT_EQ(schur.code, 0) << schur.err;
  ASSERT_EQ(dense.code, 0) << dense.err;
  const double a = lambda_m_of(sparse.out);
  const double b = lambda_m_of(schur.out);
  const double c = lambda_m_of(dense.out);
  EXPECT_NEAR(a, b, 1e-8 * b);
  EXPECT_NEAR(a, c, 1e-8 * c);
}

TEST(Cli, UnknownRunawayMethodIsUsageError) {
  auto r = run({"runaway", "--chip", "alpha", "--runaway-method", "lobpcg"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown runaway method 'lobpcg'"), std::string::npos);
  EXPECT_NE(r.err.find("sparse|schur|dense"), std::string::npos);
}

TEST(Cli, ValidateWithinPaperBound) {
  auto r = run({"validate", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("max |diff|"), std::string::npos);
}

TEST(Cli, SweepEmitsCsv) {
  auto r = run({"sweep", "--chip", "alpha", "--points", "5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("current_a,peak_degc,ptec_w"), std::string::npos);
  // Header + 6 data rows.
  EXPECT_EQ(std::count(r.out.begin(), r.out.end(), '\n'), 7);
}

TEST(Cli, SensitivityEmitsCsv) {
  auto r = run({"sensitivity", "--chip", "alpha"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("parameter,d_peak_per_rel"), std::string::npos);
  EXPECT_NE(r.out.find("seebeck,"), std::string::npos);
  EXPECT_NE(r.out.find("g_cold_contact,"), std::string::npos);
}

TEST(Cli, FlpRequiresPtrace) {
  auto r = run({"design", "--flp", "/nonexistent.flp"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--ptrace"), std::string::npos);
}

TEST(Cli, MissingFlpFileReported) {
  auto r = run({"design", "--flp", "/nonexistent.flp", "--ptrace", "/nonexistent.ptrace"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, VersionPrintsBuildInfo) {
  auto r = run({"version"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("tfcool"), std::string::npos);
  EXPECT_NE(r.out.find("compiler:"), std::string::npos);
  EXPECT_NE(r.out.find("obs compile-time level:"), std::string::npos);
}

TEST(Cli, BadLogLevelIsUsageError) {
  auto r = run({"design", "--chip", "alpha", "--log-level", "shouty"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown log level"), std::string::npos);
}

TEST(Cli, TraceAndMetricsOutWriteJson) {
  namespace fs = std::filesystem;
  const auto trace = fs::temp_directory_path() / "tfcool_cli_test_trace.json";
  const auto metrics = fs::temp_directory_path() / "tfcool_cli_test_metrics.json";
  fs::remove(trace);
  fs::remove(metrics);
  auto r = run({"design", "--chip", "alpha", "--no-full-cover", "--trace-out",
                trace.string(), "--metrics-out", metrics.string()});
  EXPECT_EQ(r.code, 0) << r.err;

  std::ifstream tf(trace);
  ASSERT_TRUE(tf.good());
  std::stringstream tbuf;
  tbuf << tf.rdbuf();
  EXPECT_NE(tbuf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(tbuf.str().find("\"name\":\"design\""), std::string::npos);
  EXPECT_NE(tbuf.str().find("\"name\":\"greedy_deploy\""), std::string::npos);
  EXPECT_NE(tbuf.str().find("\"ph\":\"X\""), std::string::npos);

  std::ifstream mf(metrics);
  ASSERT_TRUE(mf.good());
  std::stringstream mbuf;
  mbuf << mf.rdbuf();
  EXPECT_NE(mbuf.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(mbuf.str().find("\"cg.iterations\""), std::string::npos);
  EXPECT_NE(mbuf.str().find("\"greedy.candidate_evaluations\""), std::string::npos);

  fs::remove(trace);
  fs::remove(metrics);
}

TEST(Cli, TracingIsScopedToOneInvocation) {
  namespace fs = std::filesystem;
  const auto trace = fs::temp_directory_path() / "tfcool_cli_test_trace2.json";
  fs::remove(trace);
  auto r1 = run({"runaway", "--chip", "alpha", "--trace-out", trace.string()});
  EXPECT_EQ(r1.code, 0);
  // A following invocation without --trace-out must not collect spans.
  auto r2 = run({"runaway", "--chip", "alpha"});
  EXPECT_EQ(r2.code, 0);
  EXPECT_FALSE(tfc::obs::TraceCollector::global().enabled());
  EXPECT_EQ(tfc::obs::TraceCollector::global().event_count(), 0u);
  fs::remove(trace);
}

TEST(Cli, UnknownOptionNamesTokenAndCommand) {
  auto r = run({"design", "--frobnicate", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown option '--frobnicate' for command 'design'"),
            std::string::npos);
  EXPECT_NE(r.err.find("usage: tfcool design"), std::string::npos);

  // Same diagnosis when the unknown option is the last token (nothing behind
  // it that could have been its value).
  auto last = run({"design", "--frobnicate"});
  EXPECT_EQ(last.code, 2);
  EXPECT_NE(last.err.find("unknown option '--frobnicate' for command 'design'"),
            std::string::npos);
  EXPECT_NE(last.err.find("usage: tfcool design"), std::string::npos);

  // A known value-taking option with no value still reports the missing value.
  auto missing = run({"design", "--chip"});
  EXPECT_EQ(missing.code, 2);
  EXPECT_NE(missing.err.find("option '--chip' requires a value"), std::string::npos);
}

TEST(Cli, OptionsAreValidatedPerCommand) {
  // --points belongs to sweep, not runaway.
  auto r = run({"runaway", "--points", "5"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown option '--points' for command 'runaway'"),
            std::string::npos);
}

TEST(Cli, PerCommandHelpShowsOwnOptions) {
  auto r = run({"sweep", "--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: tfcool sweep"), std::string::npos);
  EXPECT_NE(r.out.find("--points"), std::string::npos);
  EXPECT_NE(r.out.find("--chip"), std::string::npos);  // chip-selection block

  auto serve_help = run({"serve", "--help"});
  EXPECT_EQ(serve_help.code, 0);
  EXPECT_NE(serve_help.out.find("--queue"), std::string::npos);
  EXPECT_NE(serve_help.out.find("SIGINT/SIGTERM"), std::string::npos);
}

TEST(Cli, ServeRequiresAListener) {
  auto r = run({"serve"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--socket"), std::string::npos);
}

TEST(Cli, RequestValidatesItsOptions) {
  auto no_method = run({"request", "--socket", "/tmp/nowhere.sock"});
  EXPECT_EQ(no_method.code, 2);
  EXPECT_NE(no_method.err.find("--method"), std::string::npos);

  auto no_endpoint = run({"request", "--method", "ping"});
  EXPECT_EQ(no_endpoint.code, 2);
  EXPECT_NE(no_endpoint.err.find("exactly one of"), std::string::npos);

  auto bad_params = run({"request", "--socket", "/tmp/nowhere.sock", "--method",
                         "ping", "--params", "not json"});
  EXPECT_EQ(bad_params.code, 2);
  EXPECT_NE(bad_params.err.find("bad --params"), std::string::npos);
}

/// Full service loop through the CLI surface only: `tfcool serve` in a
/// thread, `tfcool request` for the traffic, metrics checked from the
/// --metrics-out export — the same artifacts a shell user would touch.
TEST(Cli, ServeRequestEndToEnd) {
  namespace fs = std::filesystem;
  const auto sock = fs::temp_directory_path() /
                    ("tfcool_cli_e2e_" + std::to_string(::getpid()) + ".sock");
  const auto metrics = fs::temp_directory_path() / "tfcool_cli_e2e_metrics.json";
  fs::remove(sock);
  fs::remove(metrics);
  const auto hits_before =
      tfc::obs::MetricsRegistry::global().counter("svc.cache.hits").value();

  CliRun serve_result;
  std::thread server([&] {
    serve_result = run({"serve", "--socket", sock.string(), "--workers", "1",
                        "--queue", "1", "--metrics-out", metrics.string()});
  });

  auto request = [&](std::vector<std::string> extra) {
    std::vector<std::string> args = {"request", "--socket", sock.string()};
    args.insert(args.end(), extra.begin(), extra.end());
    return run(args);
  };

  // Wait until the service answers a ping (socket creation is async).
  CliRun ping;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ping = request({"--method", "ping"});
    if (ping.code == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_EQ(ping.code, 0) << ping.err;
  EXPECT_NE(ping.out.find("\"pong\""), std::string::npos);

  // Second identical solve must be served from the session cache.
  auto solve1 = request({"--method", "solve", "--params", R"({"chip": "alpha"})"});
  ASSERT_EQ(solve1.code, 0) << solve1.err;
  EXPECT_NE(solve1.out.find("\"peak_celsius\""), std::string::npos);
  auto solve2 = request({"--method", "solve", "--params", R"({"chip": "alpha"})"});
  ASSERT_EQ(solve2.code, 0) << solve2.err;

  // A request whose deadline expires while the lone worker is busy gets a
  // structured timeout error (exit 1, not a hang).
  std::thread blocker([&] {
    auto slow = request({"--method", "ping", "--params", R"({"delay_ms": 600})"});
    EXPECT_EQ(slow.code, 0) << slow.err;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto late = request({"--method", "ping", "--deadline-ms", "50"});
  blocker.join();
  EXPECT_EQ(late.code, 1);
  EXPECT_NE(late.out.find("deadline_exceeded"), std::string::npos);

  // Worker busy + queue full → the extra request is shed with `overloaded`.
  std::thread busy1([&] {
    (void)request({"--method", "ping", "--params", R"({"delay_ms": 600})"});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::thread busy2([&] {
    (void)request({"--method", "ping", "--params", R"({"delay_ms": 600})"});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto shed = request({"--method", "ping"});
  busy1.join();
  busy2.join();
  EXPECT_EQ(shed.code, 1);
  EXPECT_NE(shed.out.find("overloaded"), std::string::npos);
  EXPECT_NE(shed.out.find("429"), std::string::npos);

  // Graceful stop through the protocol; the serve command must exit 0.
  auto bye = request({"--method", "shutdown"});
  EXPECT_EQ(bye.code, 0);
  server.join();
  EXPECT_EQ(serve_result.code, 0) << serve_result.err;
  EXPECT_NE(serve_result.out.find("server stopped (drained)"), std::string::npos);

  // The exported metrics document proves the cache hit (acceptance check).
  std::ifstream mf(metrics);
  ASSERT_TRUE(mf.good());
  std::stringstream mbuf;
  mbuf << mf.rdbuf();
  const auto doc = tfc::io::parse_json(mbuf.str());
  EXPECT_GE(doc.at("counters").at("svc.cache.hits").as_number(),
            double(hits_before + 1));
  EXPECT_GE(doc.at("counters").at("svc.rejected.overloaded").as_number(), 1.0);
  EXPECT_GE(doc.at("counters").at("svc.rejected.deadline").as_number(), 1.0);

  fs::remove(sock);
  fs::remove(metrics);
}

/// `tfcool health` against a live service: green on healthy traffic (exit
/// 0), red with the offender named after an injected fault (exit 1), and
/// the `recent` table growing the audit columns.
TEST(Cli, HealthCommandEndToEnd) {
  namespace fs = std::filesystem;
  const auto sock = fs::temp_directory_path() /
                    ("tfcool_cli_health_" + std::to_string(::getpid()) + ".sock");
  fs::remove(sock);

  CliRun serve_result;
  std::thread server([&] {
    serve_result = run({"serve", "--socket", sock.string(), "--workers", "1",
                        "--audit-every", "1", "--cross-check-every", "1",
                        "--fault-injection"});
  });
  auto request = [&](std::vector<std::string> extra) {
    std::vector<std::string> args = {"request", "--socket", sock.string()};
    args.insert(args.end(), extra.begin(), extra.end());
    return run(args);
  };

  CliRun ping;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ping = request({"--method", "ping"});
    if (ping.code == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_EQ(ping.code, 0) << ping.err;

  auto solve = [&] {
    return request({"--method", "solve", "--params", R"({"chip": "alpha"})"});
  };
  ASSERT_EQ(solve().code, 0);
  ASSERT_EQ(solve().code, 0);

  auto green = run({"health", "--socket", sock.string()});
  EXPECT_EQ(green.code, 0) << green.err;
  EXPECT_NE(green.out.find("health: green"), std::string::npos) << green.out;
  EXPECT_NE(green.out.find("alpha"), std::string::npos);

  auto inject = request({"--method", "inject", "--params",
                         R"({"chip": "alpha", "theta_offset_k": 5.0})"});
  ASSERT_EQ(inject.code, 0) << inject.out;
  ASSERT_EQ(solve().code, 0);

  auto red = run({"health", "--socket", sock.string()});
  EXPECT_EQ(red.code, 1) << red.out;
  EXPECT_NE(red.out.find("health: red"), std::string::npos) << red.out;
  EXPECT_NE(red.out.find("offenders:"), std::string::npos);

  // The fixed-width `recent` table gained the certificate columns.
  auto recent = request({"--method", "recent"});
  EXPECT_EQ(recent.code, 0);
  EXPECT_NE(recent.out.find("audit"), std::string::npos);
  EXPECT_NE(recent.out.find("resid"), std::string::npos);
  EXPECT_NE(recent.out.find("balance"), std::string::npos);
  EXPECT_NE(recent.out.find("fail"), std::string::npos);

  // Usage errors: health needs exactly one endpoint.
  auto no_endpoint = run({"health"});
  EXPECT_EQ(no_endpoint.code, 2);
  EXPECT_NE(no_endpoint.err.find("--socket"), std::string::npos);

  auto bye = request({"--method", "shutdown"});
  EXPECT_EQ(bye.code, 0);
  server.join();
  EXPECT_EQ(serve_result.code, 0) << serve_result.err;
  fs::remove(sock);
}

TEST(Cli, ServeObservabilityFlagsAreValidated) {
  auto bad_slow = run({"serve", "--socket", "/tmp/x.sock", "--slow-ms", "-1"});
  EXPECT_EQ(bad_slow.code, 2);
  EXPECT_NE(bad_slow.err.find("--slow-ms"), std::string::npos);

  auto bad_recent = run({"serve", "--socket", "/tmp/x.sock", "--recent", "0"});
  EXPECT_EQ(bad_recent.code, 2);
  EXPECT_NE(bad_recent.err.find("--recent"), std::string::npos);
}

/// The observability surface through the CLI only: --trace/--trace-id on
/// `request`, the `recent` pretty-printer, and serve's --prom-addr /
/// --trace-file flags.
TEST(Cli, ObservabilityFlagsEndToEnd) {
  namespace fs = std::filesystem;
  const auto sock = fs::temp_directory_path() /
                    ("tfcool_cli_obs_" + std::to_string(::getpid()) + ".sock");
  const auto trace = fs::temp_directory_path() /
                     ("tfcool_cli_obs_" + std::to_string(::getpid()) + ".jsonl");
  fs::remove(sock);
  fs::remove(trace);

  CliRun serve_result;
  std::thread server([&] {
    serve_result = run({"serve", "--socket", sock.string(), "--workers", "1",
                        "--prom-addr", "127.0.0.1:0", "--recent", "4",
                        "--trace-file", trace.string()});
  });
  auto request = [&](std::vector<std::string> extra) {
    std::vector<std::string> args = {"request", "--socket", sock.string()};
    args.insert(args.end(), extra.begin(), extra.end());
    return run(args);
  };
  CliRun ping;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ping = request({"--method", "ping"});
    if (ping.code == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_EQ(ping.code, 0) << ping.err;

  // --trace asks for the span tree inline; --trace-id is echoed back.
  auto traced = request({"--method", "solve", "--params", R"({"chip": "alpha"})",
                         "--trace", "--trace-id", "cli-t1"});
  ASSERT_EQ(traced.code, 0) << traced.err;
  EXPECT_NE(traced.out.find("cli-t1"), std::string::npos);
  EXPECT_NE(traced.out.find("svc.request"), std::string::npos);
  EXPECT_NE(traced.out.find("et_solve"), std::string::npos);

  // `recent` pretty-prints by default and stays raw NDJSON with --raw.
  auto solve2 = request({"--method", "solve", "--params", R"({"chip": "alpha"})"});
  ASSERT_EQ(solve2.code, 0) << solve2.err;
  auto table = request({"--method", "recent"});
  ASSERT_EQ(table.code, 0) << table.err;
  EXPECT_NE(table.out.find("recent requests:"), std::string::npos);
  EXPECT_NE(table.out.find("(capacity 4)"), std::string::npos);
  EXPECT_NE(table.out.find("method"), std::string::npos);
  EXPECT_NE(table.out.find("hit"), std::string::npos);
  EXPECT_EQ(table.out.find("\"requests\""), std::string::npos);
  auto raw = request({"--method", "recent", "--raw"});
  ASSERT_EQ(raw.code, 0) << raw.err;
  EXPECT_NE(raw.out.find("\"requests\""), std::string::npos);

  auto bye = request({"--method", "shutdown"});
  EXPECT_EQ(bye.code, 0);
  server.join();
  ASSERT_EQ(serve_result.code, 0) << serve_result.err;
  // The serve banner announces the bound scrape port.
  EXPECT_NE(serve_result.out.find("metrics on http:"), std::string::npos);

  // --trace-file captured one JSONL span tree per request.
  std::ifstream tf(trace);
  ASSERT_TRUE(tf.good());
  std::string line;
  ASSERT_TRUE(std::getline(tf, line));
  EXPECT_NE(line.find("svc.request"), std::string::npos);

  fs::remove(sock);
  fs::remove(trace);
}

/// Satellite of PR 9: every exported Chrome trace_event must be a complete
/// "X" (duration) event, and because events are appended at span close, the
/// per-thread end times must be monotone non-decreasing.
TEST(Cli, ChromeTraceEventsAreSchemaValidAndEndMonotonePerTid) {
  namespace fs = std::filesystem;
  const auto trace = fs::temp_directory_path() /
                     ("tfcool_cli_schema_" + std::to_string(::getpid()) + ".json");
  fs::remove(trace);
  auto r = run({"design", "--chip", "alpha", "--no-full-cover", "--trace-out",
                trace.string()});
  ASSERT_EQ(r.code, 0) << r.err;

  std::ifstream tf(trace);
  ASSERT_TRUE(tf.good());
  std::stringstream buf;
  buf << tf.rdbuf();
  const auto doc = tfc::io::parse_json(buf.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_GT(events.size(), 10u);

  std::map<long long, double> last_end_by_tid;
  for (const auto& e : events) {
    EXPECT_EQ(e.string_or("ph", ""), "X");
    EXPECT_FALSE(e.string_or("name", "").empty());
    const double ts = e.number_or("ts", -1.0);
    const double dur = e.number_or("dur", -1.0);
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    ASSERT_NE(e.get("pid"), nullptr);
    ASSERT_NE(e.get("tid"), nullptr);
    const auto tid = (long long)e.number_or("tid", -1.0);
    const double end = ts + dur;
    auto it = last_end_by_tid.find(tid);
    if (it != last_end_by_tid.end()) {
      EXPECT_GE(end, it->second) << "tid " << tid << " event out of order";
      it->second = end;
    } else {
      last_end_by_tid[tid] = end;
    }
  }
  fs::remove(trace);
}

TEST(Cli, ProfileCommandPrintsKernelTable) {
  auto r = run({"profile", "--chip", "alpha"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("profile: alpha design"), std::string::npos);
  EXPECT_NE(r.out.find("lambda_m"), std::string::npos);
  EXPECT_NE(r.out.find("kernel"), std::string::npos);
  EXPECT_NE(r.out.find("self_ms"), std::string::npos);
  EXPECT_NE(r.out.find("sparse_refactor"), std::string::npos);
  EXPECT_NE(r.out.find("greedy_deploy"), std::string::npos);

  auto bad = run({"profile", "--chip", "alpha", "--format", "xml"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("--format"), std::string::npos);
}

TEST(Cli, ProfileOutWritesCollapsedAndIsScopedToOneInvocation) {
  namespace fs = std::filesystem;
  const auto folded = fs::temp_directory_path() /
                      ("tfcool_cli_prof_" + std::to_string(::getpid()) + ".folded");
  fs::remove(folded);
  auto r = run({"runaway", "--chip", "alpha", "--profile-out", folded.string()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote " + folded.string()), std::string::npos);

  std::ifstream pf(folded);
  ASSERT_TRUE(pf.good());
  std::stringstream buf;
  buf << pf.rdbuf();
  EXPECT_NE(buf.str().find("runaway_limit"), std::string::npos);
  // Collapsed grammar: `frame(;frame)* <count>` per line.
  std::string line;
  std::istringstream lines(buf.str());
  while (std::getline(lines, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    for (char c : line.substr(space + 1)) EXPECT_TRUE(::isdigit(c)) << line;
  }

  // The profiler must not stay enabled for the next invocation.
  EXPECT_FALSE(tfc::obs::prof::Profiler::global().enabled());
  fs::remove(folded);
}

/// PR 9 acceptance: `tfcool profile` and the service `profile` method see
/// the same workload — a session build for the same chip/limit — so their
/// per-kernel frame counts must agree exactly (wall times vary; counts are
/// deterministic).
TEST(Cli, ServeProfileEndToEndMatchesCliProfileCounts) {
  namespace fs = std::filesystem;
  const auto sock = fs::temp_directory_path() /
                    ("tfcool_cli_prof_e2e_" + std::to_string(::getpid()) + ".sock");
  fs::remove(sock);

  // Drain everything earlier tests recorded so the service's cumulative
  // snapshot covers exactly this server's lifetime.
  tfc::obs::prof::Profiler::global().disable();
  (void)tfc::obs::prof::Profiler::global().snapshot(true);

  CliRun serve_result;
  std::thread server([&] {
    serve_result = run({"serve", "--socket", sock.string(), "--workers", "1",
                        "--profile"});
  });
  auto request = [&](std::vector<std::string> extra) {
    std::vector<std::string> args = {"request", "--socket", sock.string()};
    args.insert(args.end(), extra.begin(), extra.end());
    return run(args);
  };
  CliRun ping;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ping = request({"--method", "ping"});
    if (ping.code == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_EQ(ping.code, 0) << ping.err;

  auto design = request({"--method", "design", "--params", R"({"chip": "alpha"})"});
  ASSERT_EQ(design.code, 0) << design.err;

  // The collapsed form is servable text.
  auto collapsed =
      request({"--method", "profile", "--params", R"({"format": "collapsed"})"});
  ASSERT_EQ(collapsed.code, 0) << collapsed.err;
  EXPECT_NE(collapsed.out.find("svc.method.design"), std::string::npos);

  auto prof = request({"--method", "profile", "--params", R"({"format": "json"})"});
  ASSERT_EQ(prof.code, 0) << prof.err;
  const auto reply = tfc::io::parse_json(prof.out);
  const auto& result = reply.at("result");
  EXPECT_TRUE(result.bool_or("enabled", false));
  EXPECT_GE(result.number_or("overhead_ratio", -1.0), 0.0);
  ASSERT_TRUE(result.at("totals").number_or("count", 0.0) > 0.0);
  const auto& svc_kernels = result.at("profile").at("kernels").as_array();

  // The flight recorder now attributes each request to its top kernel.
  auto table = request({"--method", "recent"});
  ASSERT_EQ(table.code, 0) << table.err;
  EXPECT_NE(table.out.find("top_kernel"), std::string::npos);
  EXPECT_NE(table.out.find("sparse_refactor"), std::string::npos);

  // The metrics registry carries the live overhead gauge.
  auto metrics = request({"--method", "metrics"});
  ASSERT_EQ(metrics.code, 0) << metrics.err;
  EXPECT_NE(metrics.out.find("tfc.prof.overhead_ratio"), std::string::npos);

  auto bye = request({"--method", "shutdown"});
  EXPECT_EQ(bye.code, 0);
  server.join();
  ASSERT_EQ(serve_result.code, 0) << serve_result.err;

  // Same chip, same limit, same session-build workload through the CLI.
  const auto json_path = fs::temp_directory_path() /
                         ("tfcool_cli_prof_e2e_" + std::to_string(::getpid()) + ".json");
  fs::remove(json_path);
  auto cli = run({"profile", "--chip", "alpha", "--format", "json", "--out",
                  json_path.string()});
  ASSERT_EQ(cli.code, 0) << cli.err;
  std::ifstream jf(json_path);
  ASSERT_TRUE(jf.good());
  std::stringstream jbuf;
  jbuf << jf.rdbuf();
  const auto cli_doc = tfc::io::parse_json(jbuf.str());
  const auto& cli_kernels = cli_doc.at("kernels").as_array();

  auto count_of = [](const std::vector<tfc::io::JsonValue>& kernels,
                     const std::string& name) -> double {
    for (const auto& k : kernels) {
      if (k.string_or("name", "") == name) return k.number_or("count", -1.0);
    }
    return 0.0;
  };
  for (const char* kernel :
       {"greedy_deploy", "greedy_pass", "optimize_current", "engine_probe",
        "sparse_refactor", "et_solve", "runaway_limit"}) {
    EXPECT_EQ(count_of(svc_kernels, kernel), count_of(cli_kernels, kernel))
        << "kernel " << kernel << " count diverges between svc and CLI";
    EXPECT_GT(count_of(cli_kernels, kernel), 0.0) << kernel;
  }

  fs::remove(json_path);
  fs::remove(sock);
}

TEST(Cli, ImportedChipDesign) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path();
  const auto flp = dir / "tfcool_cli_test.flp";
  const auto ptrace = dir / "tfcool_cli_test.ptrace";
  {
    std::ofstream f(flp);
    f << "CORE 3e-3 3e-3 0 3e-3\nREST 3e-3 3e-3 3e-3 3e-3\nBOT 6e-3 3e-3 0 0\n";
    std::ofstream t(ptrace);
    t << "CORE REST BOT\n9.0 3.0 5.0\n8.0 3.5 4.0\n";
  }
  auto r = run({"design", "--flp", flp.string(), "--ptrace", ptrace.string(),
                "--no-full-cover"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ok"), std::string::npos);
  fs::remove(flp);
  fs::remove(ptrace);
}

}  // namespace
}  // namespace tfc::cli
