/// tfc::engine::SolveContext — the tentpole invariants:
///  * extend() re-stamps incrementally yet reproduces a from-scratch
///    assembly bit for bit (the Debug assertion inside
///    PackageModel::extend_tec checks the same predicate on every extend);
///  * every backend agrees on the operating point and on where positive
///    definiteness is lost (i ≥ λ_m);
///  * the pooled-workspace probe path returns exactly what a plain
///    ElectroThermalSystem::solve returns.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "engine/solve_context.h"
#include "obs/obs.h"
#include "tec/electro_thermal.h"

namespace tfc::engine {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 4;
  g.die_width = g.die_height = 2e-3;
  return g;
}

linalg::Vector small_powers() {
  linalg::Vector p(16, 0.08);
  p[5] = 0.5;
  p[10] = 0.4;
  return p;
}

TileMask two_tiles() {
  TileMask dep(4, 4);
  dep.set(1, 1);
  dep.set(2, 2);
  return dep;
}

SolveContext make_context(EngineOptions opts = {}) {
  return SolveContext(small_geom(), two_tiles(), small_powers(),
                      tec::TecDeviceParams::chowdhury_superlattice(), opts);
}

std::uint64_t restamp_incremental() {
  return obs::MetricsRegistry::global().counter("engine.restamp.incremental").value();
}

std::uint64_t restamp_full() {
  return obs::MetricsRegistry::global().counter("engine.restamp.full").value();
}

TEST(SolveContext, ExtendRestampsIncrementallyAndMatchesFreshAssembly) {
  SolveContext ctx(small_geom(), TileMask(), small_powers(),
                   tec::TecDeviceParams::chowdhury_superlattice());
  const std::uint64_t inc0 = restamp_incremental();

  TileMask dep(4, 4);
  dep.set(1, 1);
  ctx.extend(dep);
  dep.set(2, 2);
  dep.set(0, 3);
  ctx.extend(dep);
  EXPECT_EQ(restamp_incremental(), inc0 + 2);

  // The restamped network must be bitwise the from-scratch assembly — the
  // same predicate the Debug-mode assert in PackageModel::extend_tec checks.
  EXPECT_TRUE(ctx.system().model().matches_fresh_build());
  EXPECT_EQ(ctx.deployment().count(), 3u);

  // And the solves must agree bit for bit with a freshly assembled system.
  auto fresh = tec::ElectroThermalSystem::assemble(
      small_geom(), dep, small_powers(),
      tec::TecDeviceParams::chowdhury_superlattice());

  // The incrementally re-assembled G (clean rows copied through the node
  // remap, dirty rows restamped) must be the from-scratch CSR exactly.
  EXPECT_EQ(ctx.system().matrix_g().row_ptr(), fresh.matrix_g().row_ptr());
  EXPECT_EQ(ctx.system().matrix_g().col_idx(), fresh.matrix_g().col_idx());
  EXPECT_EQ(ctx.system().matrix_g().values(), fresh.matrix_g().values());

  for (double i : {0.0, 0.5, 2.0}) {
    auto a = ctx.solve_probe(i);
    auto b = fresh.solve(i);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->peak_tile_temperature, b->peak_tile_temperature) << "i=" << i;
    EXPECT_EQ(a->theta, b->theta) << "i=" << i;
  }
}

TEST(SolveContext, ExtendWithAlreadyDeployedTilesIsANoOp) {
  SolveContext ctx = make_context();
  const std::uint64_t inc0 = restamp_incremental();
  const std::uint64_t full0 = restamp_full();
  ctx.extend(two_tiles());  // fully covered already
  EXPECT_EQ(restamp_incremental(), inc0);
  EXPECT_EQ(restamp_full(), full0);
}

TEST(SolveContext, IncrementalOffFallsBackToFullRebuildBitwise) {
  EngineOptions off;
  off.incremental_restamp = false;
  SolveContext a(small_geom(), TileMask(), small_powers(),
                 tec::TecDeviceParams::chowdhury_superlattice());
  SolveContext b(small_geom(), TileMask(), small_powers(),
                 tec::TecDeviceParams::chowdhury_superlattice(), off);

  const std::uint64_t full0 = restamp_full();
  a.extend(two_tiles());
  b.extend(two_tiles());
  EXPECT_GE(restamp_full(), full0 + 1);  // b rebuilt from geometry

  auto pa = a.solve_probe(1.0);
  auto pb = b.solve_probe(1.0);
  ASSERT_TRUE(pa.has_value());
  ASSERT_TRUE(pb.has_value());
  EXPECT_EQ(pa->theta, pb->theta);
}

TEST(SolveContext, SetDeploymentHandlesNonAdditiveDelta) {
  SolveContext ctx = make_context();
  const std::uint64_t full0 = restamp_full();
  TileMask other(4, 4);
  other.set(0, 0);  // (1,1)/(2,2) removed: not an additive delta
  ctx.set_deployment(other);
  EXPECT_EQ(restamp_full(), full0 + 1);
  EXPECT_EQ(ctx.deployment().count(), 1u);
  EXPECT_TRUE(ctx.system().model().matches_fresh_build());
  EXPECT_EQ(ctx.device_count(), 1u);
}

TEST(SolveContext, ProbePeakMatchesSolveProbe) {
  const SolveContext ctx = make_context();
  for (double i : {0.0, 0.3, 1.7}) {
    auto peak = ctx.probe_peak(i);
    auto op = ctx.solve_probe(i);
    ASSERT_TRUE(peak.has_value());
    ASSERT_TRUE(op.has_value());
    EXPECT_EQ(*peak, op->peak_tile_temperature) << "i=" << i;
  }
  EXPECT_FALSE(ctx.probe_peak(-1.0).has_value());
}

TEST(SolveContext, AllBackendsAgreeOnTheOperatingPoint) {
  const SolveContext direct = make_context();
  const auto reference = direct.solve(1.0);
  ASSERT_TRUE(reference.has_value());

  for (Backend b : {Backend::kCg}) {
    EngineOptions opts;
    opts.backend = b;
    const SolveContext ctx = make_context(opts);
    const auto op = ctx.solve(1.0);
    ASSERT_TRUE(op.has_value()) << backend_name(b);
    EXPECT_NEAR(op->peak_tile_temperature, reference->peak_tile_temperature,
                1e-7) << backend_name(b);
    EXPECT_NEAR(op->tec_input_power, reference->tec_input_power, 1e-7)
        << backend_name(b);
  }
}

TEST(SolveContext, AllBackendsDetectLossOfPositiveDefiniteness) {
  const SolveContext direct = make_context();
  const auto lambda_m = direct.runaway_limit();
  ASSERT_TRUE(lambda_m.has_value());
  const double beyond = *lambda_m * 1.05;

  for (Backend b : {Backend::kCholesky, Backend::kCg}) {
    EngineOptions opts;
    opts.backend = b;
    const SolveContext ctx = make_context(opts);
    EXPECT_FALSE(ctx.solve(beyond).has_value()) << backend_name(b);
    EXPECT_TRUE(ctx.solve(*lambda_m * 0.5).has_value()) << backend_name(b);
  }
}

TEST(SolveContext, SolveBackendOverridesConfiguredBackend) {
  const SolveContext ctx = make_context();  // configured cholesky
  const auto direct = ctx.solve(1.0);
  const auto via_cg = ctx.solve_backend(Backend::kCg, 1.0);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(via_cg.has_value());
  EXPECT_NEAR(via_cg->peak_tile_temperature, direct->peak_tile_temperature, 1e-7);
}

TEST(SolveContext, RunawayLimitIsCachedUntilExtend) {
  SolveContext ctx = make_context();
  const auto first = ctx.runaway_limit();
  const auto second = ctx.runaway_limit();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);

  TileMask grown = two_tiles();
  grown.set(3, 3);
  ctx.extend(grown);
  const auto after = ctx.runaway_limit();
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(*after, *first);  // λ_m changes with the deployment
}

TEST(SolveContext, RunawayDefaultsToSparseAndCountsEachComputation) {
  SolveContext ctx = make_context();
  EXPECT_FALSE(ctx.cached_runaway_method().has_value());  // cold cache

  auto& sparse_counter = obs::MetricsRegistry::global().counter("engine.runaway.sparse");
  const std::uint64_t before = sparse_counter.value();
  const auto lm = ctx.runaway_limit();
  ASSERT_TRUE(lm.has_value());
  EXPECT_EQ(sparse_counter.value(), before + 1);

  const auto method = ctx.cached_runaway_method();
  ASSERT_TRUE(method.has_value());
  EXPECT_EQ(*method, tec::RunawayMethod::kSparse);

  // Cache hits never re-run the eigensolve.
  const auto again = ctx.runaway_limit();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *lm);
  EXPECT_EQ(sparse_counter.value(), before + 1);
}

TEST(SolveContext, RunawayMethodsAgreeThroughTheContext) {
  SolveContext ctx = make_context();
  const auto sparse = ctx.runaway_limit();  // engine default: sparse Lanczos
  tec::RunawayOptions schur, dense;
  schur.method = tec::RunawayMethod::kSchur;
  dense.method = tec::RunawayMethod::kDenseBisect;
  const auto via_schur = ctx.runaway_limit(schur);
  const auto via_dense = ctx.runaway_limit(dense);
  ASSERT_TRUE(sparse && via_schur && via_dense);
  EXPECT_NEAR(*sparse, *via_schur, 1e-8 * *via_schur);
  EXPECT_NEAR(*sparse, *via_dense, 1e-8 * *via_dense);
}

TEST(SolveContext, RunawayRecordsSchurFallbackForTinyDeployments) {
  TileMask one(4, 4);
  one.set(1, 1);
  SolveContext ctx(small_geom(), one, small_powers(),
                   tec::TecDeviceParams::chowdhury_superlattice());
  ASSERT_EQ(ctx.device_count(), 1u);  // below sparse_min_devices

  auto& schur_counter = obs::MetricsRegistry::global().counter("engine.runaway.schur");
  const std::uint64_t before = schur_counter.value();
  ASSERT_TRUE(ctx.runaway_limit().has_value());
  EXPECT_EQ(schur_counter.value(), before + 1);
  const auto method = ctx.cached_runaway_method();
  ASSERT_TRUE(method.has_value());
  EXPECT_EQ(*method, tec::RunawayMethod::kSchur);  // the fallback is recorded
}

TEST(SolveContext, AuditCertificateNamesTheRunawayMethod) {
  SolveContext ctx = make_context();
  const auto lm = ctx.runaway_limit();
  ASSERT_TRUE(lm.has_value());
  const auto op = ctx.solve_probe(0.5 * *lm);
  ASSERT_TRUE(op.has_value());
  const auto cert = ctx.audit(*op);
  ASSERT_TRUE(cert.has_lambda_margin);
  EXPECT_EQ(cert.lambda_method, "sparse");
}

TEST(SolveContext, AdoptingConstructorRecoversInstalledPowers) {
  auto system = tec::ElectroThermalSystem::assemble(
      small_geom(), two_tiles(), small_powers(),
      tec::TecDeviceParams::chowdhury_superlattice());
  const SolveContext adopted(std::move(system));
  const SolveContext built = make_context();
  auto a = adopted.solve_probe(0.8);
  auto b = built.solve_probe(0.8);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->theta, b->theta);
}

TEST(SolveContext, EmptyDeploymentSolvesPassivelyOnly) {
  SolveContext ctx(small_geom(), TileMask(), small_powers(),
                   tec::TecDeviceParams::chowdhury_superlattice());
  EXPECT_EQ(ctx.device_count(), 0u);
  EXPECT_FALSE(ctx.runaway_limit().has_value());
  auto op = ctx.solve_probe(0.0);
  ASSERT_TRUE(op.has_value());
  EXPECT_GT(op->peak_tile_temperature, 0.0);
}

}  // namespace
}  // namespace tfc::engine
