#include <gtest/gtest.h>

#include <string>

#include "engine/backend.h"

namespace tfc::engine {
namespace {

TEST(Backend, NamesRoundTrip) {
  for (Backend b : {Backend::kCholesky, Backend::kCg}) {
    auto parsed = parse_backend(backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
}

TEST(Backend, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_FALSE(parse_backend("gauss").has_value());
  EXPECT_FALSE(parse_backend("Cholesky").has_value());  // case-sensitive
  EXPECT_FALSE(parse_backend("ldlt").has_value());  // cut: dense O(n^3), see backend.h
}

TEST(Backend, ListMentionsEveryBackend) {
  const std::string list = backend_list();
  for (Backend b : {Backend::kCholesky, Backend::kCg}) {
    EXPECT_NE(list.find(backend_name(b)), std::string::npos) << backend_name(b);
  }
}

TEST(Backend, DefaultOptionsUseCholeskyWithIncrementalRestamp) {
  const EngineOptions opts;
  EXPECT_EQ(opts.backend, Backend::kCholesky);
  EXPECT_TRUE(opts.incremental_restamp);
}

}  // namespace
}  // namespace tfc::engine
