/// tfc::engine audit certificates — the numerical-health contracts:
///  * a healthy direct solve certifies with a tiny pencil residual and a
///    closed energy balance (the row-sum identity of the Stieltjes G);
///  * the certificate holds across backends and thread counts on the
///    paper's Alpha deployment, not just on toy grids;
///  * CG hitting its iteration cap throws the typed CgNonConvergedError
///    and bumps engine.cg.nonconverged instead of returning a wrong θ.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "core/cooling_system.h"
#include "engine/audit.h"
#include "engine/solve_context.h"
#include "floorplan/alpha21364.h"
#include "obs/obs.h"
#include "par/thread_pool.h"
#include "power/workload.h"
#include "tec/electro_thermal.h"

namespace tfc::engine {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 4;
  g.die_width = g.die_height = 2e-3;
  return g;
}

linalg::Vector small_powers() {
  linalg::Vector p(16, 0.08);
  p[5] = 0.5;
  p[10] = 0.4;
  return p;
}

TileMask two_tiles() {
  TileMask dep(4, 4);
  dep.set(1, 1);
  dep.set(2, 2);
  return dep;
}

SolveContext make_context(EngineOptions opts = {}) {
  return SolveContext(small_geom(), two_tiles(), small_powers(),
                      tec::TecDeviceParams::chowdhury_superlattice(), opts);
}

TEST(Audit, HealthyDirectSolveCertifiesWithinDefaultTolerances) {
  const SolveContext ctx = make_context();
  const auto op = ctx.solve(1.0);
  ASSERT_TRUE(op.has_value());

  const auto cert = audit_point(ctx.system(), *op, ctx.runaway_limit());
  EXPECT_GE(cert.rel_residual, 0.0);
  EXPECT_LT(cert.rel_residual, 1e-11);
  EXPECT_GE(cert.energy_balance_rel, 0.0);
  EXPECT_LT(cert.energy_balance_rel, 1e-9);
  EXPECT_GT(cert.theta_min_k, 150.0);
  EXPECT_LT(cert.theta_max_k, 1000.0);
  ASSERT_TRUE(cert.has_lambda_margin);
  EXPECT_GT(cert.lambda_margin_a, 0.0);
  EXPECT_FALSE(cert.degraded);
  EXPECT_TRUE(cert.pass(obs::health::Tolerances{}));

  // describe() names every judged quantity — it is the WARN payload.
  const std::string text = cert.describe();
  EXPECT_NE(text.find("rel_residual"), std::string::npos);
  EXPECT_NE(text.find("energy_balance"), std::string::npos);
  EXPECT_NE(text.find("lambda_margin_a"), std::string::npos);
}

TEST(Audit, EnergyBalanceClosesOnAnalyticPassiveCase) {
  // No TECs, i = 0: no Joule, no Peltier — the heat rejected at the ambient
  // boundary must equal the injected source power exactly (row-sum identity
  // of the conductance matrix), so closure is float-roundoff only.
  SolveContext ctx(small_geom(), TileMask(), small_powers(),
                   tec::TecDeviceParams::chowdhury_superlattice());
  const auto op = ctx.solve(0.0);
  ASSERT_TRUE(op.has_value());

  const auto balance = ctx.system().energy_balance(0.0, op->theta);
  EXPECT_DOUBLE_EQ(balance.joule_w, 0.0);
  EXPECT_DOUBLE_EQ(balance.peltier_w, 0.0);
  EXPECT_GT(balance.source_w, 0.0);
  EXPECT_NEAR(balance.injected_w, balance.source_w, 1e-12);
  EXPECT_LT(balance.relative, 1e-11);
}

TEST(Audit, EnergyBalanceDecomposesActiveSolve) {
  const SolveContext ctx = make_context();
  const double current = 1.5;
  const auto op = ctx.solve(current);
  ASSERT_TRUE(op.has_value());

  const auto balance = ctx.system().energy_balance(current, op->theta);
  EXPECT_GT(balance.source_w, 0.0);
  EXPECT_GT(balance.joule_w, 0.0);  // r·i²/2 on both plates
  EXPECT_NEAR(balance.injected_w,
              balance.source_w + balance.joule_w + balance.peltier_w, 1e-12);
  EXPECT_NEAR(balance.rejected_w, balance.injected_w,
              1e-10 * std::abs(balance.injected_w));
  EXPECT_LT(balance.relative, 1e-10);
}

TEST(Audit, ResidualBelowTargetOnAlphaAcrossBackendsAndThreads) {
  // The acceptance bar: on the paper's Alpha worst-case deployment the
  // direct solve certifies at rel residual < 1e-10 and balance < 1e-8,
  // for every backend × thread combination.
  const auto plan = floorplan::alpha21364();
  power::WorkloadSynthesizer synth(plan);
  core::DesignRequest req;
  req.chip_name = "Alpha";
  req.tile_powers =
      power::worst_case_profile(plan, synth.synthesize_suite(8)).tile_powers();
  req.theta_limit_celsius = 85.0;
  const auto design = core::design_cooling_system(req);
  ASSERT_TRUE(design.success);

  for (Backend backend : {Backend::kCholesky, Backend::kCg}) {
    for (std::size_t threads : {std::size_t(1), std::size_t(4)}) {
      par::ThreadPool::set_global_threads(threads);
      EngineOptions opts;
      opts.backend = backend;
      SolveContext ctx(thermal::PackageGeometry{}, design.deployment,
                       req.tile_powers,
                       tec::TecDeviceParams::chowdhury_superlattice(), opts);
      const auto op = ctx.solve(design.current);
      ASSERT_TRUE(op.has_value())
          << backend_name(backend) << " threads=" << threads;
      const auto cert = audit_point(ctx.system(), *op, ctx.runaway_limit());
      EXPECT_LT(cert.rel_residual, backend == Backend::kCholesky ? 1e-10 : 1e-9)
          << backend_name(backend) << " threads=" << threads;
      EXPECT_LT(cert.energy_balance_rel, 1e-8)
          << backend_name(backend) << " threads=" << threads;
      EXPECT_TRUE(cert.pass(obs::health::Tolerances{}))
          << backend_name(backend) << " threads=" << threads << " "
          << cert.describe();
    }
  }
  par::ThreadPool::set_global_threads(0);
}

TEST(Audit, CorruptedThetaTripsTheCertificate) {
  const SolveContext ctx = make_context();
  auto op = ctx.solve(1.0);
  ASSERT_TRUE(op.has_value());
  for (std::size_t k = 0; k < op->theta.size(); ++k) op->theta[k] += 2.0;

  const auto cert = audit_point(ctx.system(), *op);
  EXPECT_GT(cert.rel_residual, 1e-6);
  EXPECT_FALSE(cert.pass(obs::health::Tolerances{}));
}

TEST(Audit, DegradedCertificateNeverPasses) {
  const SolveContext ctx = make_context();
  const auto op = ctx.solve(1.0);
  ASSERT_TRUE(op.has_value());
  const auto cert = audit_point(ctx.system(), *op, std::nullopt, /*degraded=*/true);
  EXPECT_TRUE(cert.degraded);
  EXPECT_FALSE(cert.has_lambda_margin);
  EXPECT_FALSE(cert.pass(obs::health::Tolerances{}));
}

TEST(Audit, RecordAuditMetricsCountsSamplesViolationsAndDegraded) {
  auto& m = obs::MetricsRegistry::global();

  EngineOptions opts;
  opts.audit.enabled = false;  // count only the explicit records below
  const SolveContext ctx = make_context(opts);
  auto op = ctx.solve(1.0);
  ASSERT_TRUE(op.has_value());

  const auto samples0 = m.counter("engine.audit.samples").value();
  const auto violations0 = m.counter("engine.audit.violations").value();
  const auto degraded0 = m.counter("engine.audit.degraded").value();

  const auto good = audit_point(ctx.system(), *op);
  EXPECT_TRUE(record_audit_metrics(good, obs::health::Tolerances{}));

  // A corrupted θ is a hard violation; a degraded solve counts separately
  // (the failure was already surfaced, e.g. as CgNonConvergedError).
  auto bad_op = *op;
  for (std::size_t k = 0; k < bad_op.theta.size(); ++k) bad_op.theta[k] += 2.0;
  auto bad = audit_point(ctx.system(), bad_op);
  EXPECT_FALSE(record_audit_metrics(bad, obs::health::Tolerances{}));

  auto degraded = audit_point(ctx.system(), *op, std::nullopt, /*degraded=*/true);
  EXPECT_FALSE(record_audit_metrics(degraded, obs::health::Tolerances{}));

  EXPECT_EQ(m.counter("engine.audit.samples").value(), samples0 + 3);
  EXPECT_EQ(m.counter("engine.audit.violations").value(), violations0 + 1);
  EXPECT_EQ(m.counter("engine.audit.degraded").value(), degraded0 + 1);
}

TEST(Audit, CgIterationCapThrowsTypedErrorAndCounts) {
  EngineOptions opts;
  opts.backend = Backend::kCg;
  opts.cg_rel_tol = 1e-300;  // unreachable: force the iteration cap
  opts.cg_max_iterations = 3;
  const SolveContext ctx = make_context(opts);

  auto& m = obs::MetricsRegistry::global();
  const auto nonconv0 = m.counter("engine.cg.nonconverged").value();
  try {
    (void)ctx.solve(1.0);
    FAIL() << "expected CgNonConvergedError";
  } catch (const CgNonConvergedError& e) {
    EXPECT_EQ(e.iterations(), 3u);
    EXPECT_GT(e.rel_residual(), 0.0);
    EXPECT_NE(std::string(e.what()).find("failed to converge"),
              std::string::npos);
  }
  EXPECT_EQ(m.counter("engine.cg.nonconverged").value(), nonconv0 + 1);
}

TEST(Audit, InternalSamplingAuditsFirstSolveDeterministically) {
  auto& m = obs::MetricsRegistry::global();
  const auto samples0 = m.counter("engine.audit.samples").value();

  EngineOptions opts;
  opts.audit.sample_every = 4;  // seq 0 audits, 1..3 do not, 4 audits again
  const SolveContext ctx = make_context(opts);
  for (int k = 0; k < 5; ++k) ASSERT_TRUE(ctx.solve(1.0).has_value());
  EXPECT_EQ(m.counter("engine.audit.samples").value(), samples0 + 2);

  EngineOptions off;
  off.audit.enabled = false;
  const SolveContext quiet = make_context(off);
  const auto samples1 = m.counter("engine.audit.samples").value();
  ASSERT_TRUE(quiet.solve(1.0).has_value());
  EXPECT_EQ(m.counter("engine.audit.samples").value(), samples1);
}

}  // namespace
}  // namespace tfc::engine
