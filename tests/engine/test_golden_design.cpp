/// Engine-vs-pre-engine golden test (extends the PR 2 determinism suite):
/// `tfcool design --json` must be byte-identical to the fixtures captured at
/// the pre-engine HEAD for alpha21364 and hc3, and stay byte-identical
/// across every --backend and across thread counts. The design probe path is
/// pinned to the direct sparse Cholesky refactorization precisely so the
/// backend choice cannot perturb this output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "par/thread_pool.h"

namespace tfc {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string design_json(const std::vector<std::string>& extra_args) {
  const std::string path = "engine_golden_tmp.json";
  std::vector<std::string> args = {"design", "--no-full-cover", "--json", path};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  std::ostringstream out, err;
  const int code = cli::run_cli(args, out, err);
  EXPECT_EQ(code, 0) << err.str();
  const std::string text = slurp(path);
  std::remove(path.c_str());
  par::ThreadPool::set_global_threads(0);
  return text;
}

std::string fixture(const std::string& name) {
  return slurp(std::string(TFC_TEST_DATA_DIR) + "/" + name);
}

TEST(EngineGolden, AlphaDesignJsonMatchesPreEngineFixture) {
  const std::string golden = fixture("golden_design_alpha.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(design_json({"--chip", "alpha"}), golden);
}

TEST(EngineGolden, Hc3DesignJsonMatchesPreEngineFixture) {
  const std::string golden = fixture("golden_design_hc3.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(design_json({"--chip", "hc3"}), golden);
}

TEST(EngineGolden, ByteIdenticalAcrossBackends) {
  const std::string golden = fixture("golden_design_alpha.json");
  ASSERT_FALSE(golden.empty());
  for (const char* backend : {"cholesky", "cg"}) {
    EXPECT_EQ(design_json({"--chip", "alpha", "--backend", backend}), golden)
        << backend;
  }
}

TEST(EngineGolden, ByteIdenticalAcrossThreadCounts) {
  const std::string golden = fixture("golden_design_hc3.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(design_json({"--chip", "hc3", "--threads", "1"}), golden);
  EXPECT_EQ(design_json({"--chip", "hc3", "--threads", "8"}), golden);
}

TEST(EngineGolden, ByteIdenticalAcrossBackendThreadMatrix) {
  const std::string golden = fixture("golden_design_alpha.json");
  ASSERT_FALSE(golden.empty());
  for (const char* backend : {"cg"}) {
    for (const char* threads : {"1", "8"}) {
      EXPECT_EQ(design_json({"--chip", "alpha", "--backend", backend,
                             "--threads", threads}),
                golden)
          << backend << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace tfc
