#include <gtest/gtest.h>

#include <sstream>

#include "floorplan/alpha21364.h"
#include "floorplan/hotspot_import.h"

namespace tfc::floorplan {
namespace {

TEST(FlpExport, RoundTripsRectangularPlan) {
  std::vector<FunctionalUnit> units = {
      {"A", {{0, 0, 2, 2}}, 1.0},
      {"B", {{0, 2, 2, 2}}, 2.0},
      {"C", {{2, 0, 2, 4}}, 3.0},
  };
  Floorplan plan(4, 4, std::move(units));
  plan.validate();

  std::stringstream buf;
  write_flp(buf, plan, 0.5e-3);
  auto reread = rasterize_flp(read_flp(buf), 2e-3, 2e-3, 4, 4);

  ASSERT_EQ(reread.units().size(), 3u);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(reread.units()[*reread.unit_at({r, c})].name,
                plan.units()[*plan.unit_at({r, c})].name)
          << "(" << r << "," << c << ")";
    }
  }
}

TEST(FlpExport, MultiRectUnitsGetSuffixedParts) {
  std::vector<FunctionalUnit> units = {
      {"L", {{0, 0, 1, 2}, {1, 0, 1, 1}}, 1.0},
      {"R", {{1, 1, 1, 1}}, 1.0},
  };
  Floorplan plan(2, 2, std::move(units));
  plan.validate();
  std::ostringstream out;
  write_flp(out, plan, 0.5e-3);
  const std::string s = out.str();
  EXPECT_NE(s.find("L_0 "), std::string::npos);
  EXPECT_NE(s.find("L_1 "), std::string::npos);
  EXPECT_NE(s.find("R "), std::string::npos);
}

TEST(FlpExport, AlphaFloorplanSurvivesRoundTrip) {
  auto plan = alpha21364();
  std::stringstream buf;
  write_flp(buf, plan, 0.5e-3);
  auto reread = rasterize_flp(read_flp(buf), 6e-3, 6e-3, 12, 12);
  // Tile ownership preserved up to multi-rect name suffixes.
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 12; ++c) {
      const std::string orig = plan.units()[*plan.unit_at({r, c})].name;
      const std::string back = reread.units()[*reread.unit_at({r, c})].name;
      EXPECT_EQ(back.rfind(orig, 0), 0u) << back << " vs " << orig;
    }
  }
  EXPECT_EQ(reread.find("WHITESPACE"), nullptr);  // full coverage preserved
}

TEST(FlpExport, BadPitchThrows) {
  auto plan = alpha21364();
  std::ostringstream out;
  EXPECT_THROW(write_flp(out, plan, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tfc::floorplan
