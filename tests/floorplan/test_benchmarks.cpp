#include <gtest/gtest.h>

#include "floorplan/alpha21364.h"
#include "floorplan/random_chip.h"

namespace tfc::floorplan {
namespace {

TEST(Alpha21364, ValidatesAndCoversGrid) {
  auto plan = alpha21364();
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(plan.tile_rows(), 12u);
  EXPECT_EQ(plan.tile_cols(), 12u);
}

TEST(Alpha21364, PublishedTotalPower) {
  // Section VI.A: "The total worst case power consumption of the chip is
  // 20.6 W."
  EXPECT_NEAR(alpha21364().total_power(), 20.6, 0.05);
}

TEST(Alpha21364, PublishedHotClusterShares) {
  // "…consumes 28.1% of the total power while occupying only 10.4% of the
  // total area."
  auto plan = alpha21364();
  EXPECT_NEAR(plan.power_fraction(alpha21364_hot_units()), 0.281, 0.01);
  EXPECT_NEAR(plan.area_fraction(alpha21364_hot_units()), 0.104, 0.005);
}

TEST(Alpha21364, PublishedPowerDensities) {
  // IntReg at 282.4 W/cm², L2 at 25.0 W/cm² (tile = 0.0025 cm² = 0.25e-6 m²).
  auto plan = alpha21364();
  const double tile_area = 0.25e-6;
  const auto density = [&](const char* name) {
    for (std::size_t u = 0; u < plan.units().size(); ++u) {
      if (plan.units()[u].name == name) {
        return plan.unit_power_density(u, tile_area) * 1e-4;  // W/m² → W/cm²
      }
    }
    ADD_FAILURE() << "unit not found: " << name;
    return 0.0;
  };
  EXPECT_NEAR(density("IntReg"), 282.4, 0.1);
  EXPECT_NEAR(density("L2"), 25.0, 0.1);
  // Power dissipation "highly uneven": order-of-magnitude spread.
  EXPECT_GT(density("IntReg") / density("L2"), 10.0);
}

TEST(Alpha21364, HotUnitsExistAndAreHot) {
  auto plan = alpha21364();
  const double tile_area = 0.25e-6;
  for (const auto& name : alpha21364_hot_units()) {
    const auto* u = plan.find(name);
    ASSERT_NE(u, nullptr) << name;
  }
  // Every hot unit is denser than L2.
  for (std::size_t u = 0; u < plan.units().size(); ++u) {
    const auto& name = plan.units()[u].name;
    if (std::find(alpha21364_hot_units().begin(), alpha21364_hot_units().end(), name) !=
        alpha21364_hot_units().end()) {
      EXPECT_GT(plan.unit_power_density(u, tile_area),
                25.0 * 1e4 * 2.0);  // > 2× L2 density
    }
  }
}

TEST(HypotheticalChips, NamesFormat) {
  EXPECT_EQ(hypothetical_chip_name(1), "HC01");
  EXPECT_EQ(hypothetical_chip_name(10), "HC10");
  EXPECT_THROW(hypothetical_chip_name(0), std::invalid_argument);
  EXPECT_THROW(hypothetical_chip_name(100), std::invalid_argument);
}

TEST(HypotheticalChips, DeterministicInIndex) {
  auto a = hypothetical_chip(3);
  auto b = hypothetical_chip(3);
  EXPECT_EQ(a.units().size(), b.units().size());
  EXPECT_DOUBLE_EQ(a.total_power(), b.total_power());
  auto pa = a.tile_powers();
  auto pb = b.tile_powers();
  EXPECT_TRUE(linalg::approx_equal(pa, pb, 0.0));
}

TEST(HypotheticalChips, DifferentIndicesDiffer) {
  auto a = hypothetical_chip(1);
  auto b = hypothetical_chip(2);
  EXPECT_NE(a.total_power(), b.total_power());
}

TEST(HypotheticalChips, BadArgumentsThrow) {
  EXPECT_THROW(hypothetical_chip(0), std::invalid_argument);
  RandomChipOptions o;
  o.tile_rows = 13;  // not divisible by 3
  EXPECT_THROW(hypothetical_chip(1, o), std::invalid_argument);
  o = {};
  o.min_unit_tiles = 10;
  o.max_unit_tiles = 5;
  EXPECT_THROW(hypothetical_chip(1, o), std::invalid_argument);
}

// Section VI.B properties, for all ten benchmark instances.
class HcSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HcSweep, ValidatesAndMatchesSectionVIB) {
  auto plan = hypothetical_chip(GetParam());
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(plan.tile_count(), 144u);

  // "total power consumption of the chip ranges from 15 W to 25 W".
  EXPECT_GE(plan.total_power(), 15.0);
  EXPECT_LE(plan.total_power(), 25.0);

  // "each containing between 5 and 15 tiles".
  for (const auto& u : plan.units()) {
    EXPECT_GE(u.tile_count(), 5u) << u.name;
    EXPECT_LE(u.tile_count(), 15u) << u.name;
  }

  // Two hot units consuming ~30 % of power on ~10 % of area.
  ASSERT_NE(plan.find("HotA"), nullptr);
  ASSERT_NE(plan.find("HotB"), nullptr);
  const double pf = plan.power_fraction({"HotA", "HotB"});
  const double af = plan.area_fraction({"HotA", "HotB"});
  EXPECT_GE(pf, 0.28);
  EXPECT_LE(pf, 0.40);
  EXPECT_GE(af, 0.05);
  EXPECT_LE(af, 0.14);
  // Genuinely hot: pair density well above background.
  EXPECT_GT(pf / af, 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllTen, HcSweep, ::testing::Range<std::size_t>(1, 11));

}  // namespace
}  // namespace tfc::floorplan
