#include "floorplan/hotspot_import.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tfc::floorplan {
namespace {

// A 2 mm x 2 mm die split into four 1 mm x 1 mm quadrants.
constexpr const char* kQuadFlp =
    "# name width height left bottom\n"
    "SW 1e-3 1e-3 0.0  0.0\n"
    "SE 1e-3 1e-3 1e-3 0.0\n"
    "NW 1e-3 1e-3 0.0  1e-3\n"
    "NE 1e-3 1e-3 1e-3 1e-3\n";

TEST(Flp, ParsesUnitsAndComments) {
  std::istringstream in(kQuadFlp);
  auto units = read_flp(in);
  ASSERT_EQ(units.size(), 4u);
  EXPECT_EQ(units[0].name, "SW");
  EXPECT_DOUBLE_EQ(units[3].left, 1e-3);
  EXPECT_DOUBLE_EQ(units[3].bottom, 1e-3);
}

TEST(Flp, RejectsMalformedLines) {
  std::istringstream bad("U1 1e-3 1e-3 0.0\n");  // missing bottom
  EXPECT_THROW(read_flp(bad), std::runtime_error);
  std::istringstream neg("U1 -1e-3 1e-3 0 0\n");
  EXPECT_THROW(read_flp(neg), std::runtime_error);
  std::istringstream empty("# only a comment\n");
  EXPECT_THROW(read_flp(empty), std::runtime_error);
}

TEST(Flp, RasterizationOwnsTilesByCenter) {
  std::istringstream in(kQuadFlp);
  auto plan = rasterize_flp(read_flp(in), 2e-3, 2e-3, 4, 4);
  EXPECT_EQ(plan.tile_count(), 16u);
  // .flp origin is bottom-left; our row 0 is the top ⇒ NW owns tile (0,0).
  EXPECT_EQ(plan.units()[*plan.unit_at({0, 0})].name, "NW");
  EXPECT_EQ(plan.units()[*plan.unit_at({0, 3})].name, "NE");
  EXPECT_EQ(plan.units()[*plan.unit_at({3, 0})].name, "SW");
  EXPECT_EQ(plan.units()[*plan.unit_at({3, 3})].name, "SE");
  // Each quadrant got a 2x2 block of tiles.
  for (const auto& u : plan.units()) EXPECT_EQ(u.tile_count(), 4u) << u.name;
}

TEST(Flp, UncoveredTilesBecomeWhitespace) {
  std::istringstream in("CORE 1e-3 1e-3 0 0\n");  // covers only the SW quadrant
  auto plan = rasterize_flp(read_flp(in), 2e-3, 2e-3, 2, 2);
  ASSERT_NE(plan.find("WHITESPACE"), nullptr);
  EXPECT_EQ(plan.find("WHITESPACE")->tile_count(), 3u);
  EXPECT_DOUBLE_EQ(plan.find("WHITESPACE")->peak_power, 0.0);
  EXPECT_NO_THROW(plan.validate());
}

TEST(Flp, RasterizeValidatesArguments) {
  std::istringstream in(kQuadFlp);
  auto units = read_flp(in);
  EXPECT_THROW(rasterize_flp(units, 0.0, 2e-3, 2, 2), std::invalid_argument);
  EXPECT_THROW(rasterize_flp(units, 2e-3, 2e-3, 0, 2), std::invalid_argument);
}

TEST(Ptrace, WorstCaseReduction) {
  std::istringstream in(
      "SW SE NW NE\n"
      "1.0 0.5 0.2 0.1\n"
      "0.8 0.9 0.3 0.05\n"
      "0.2 0.1 0.6 0.2\n");
  auto powers = read_ptrace_worst_case(in, 0.20);
  ASSERT_EQ(powers.size(), 4u);
  EXPECT_DOUBLE_EQ(powers[0].second, 1.0 * 1.2);
  EXPECT_DOUBLE_EQ(powers[1].second, 0.9 * 1.2);
  EXPECT_DOUBLE_EQ(powers[2].second, 0.6 * 1.2);
  EXPECT_DOUBLE_EQ(powers[3].second, 0.2 * 1.2);
}

TEST(Ptrace, Validation) {
  std::istringstream empty("");
  EXPECT_THROW(read_ptrace_worst_case(empty), std::runtime_error);
  std::istringstream no_rows("A B\n");
  EXPECT_THROW(read_ptrace_worst_case(no_rows), std::runtime_error);
  std::istringstream ragged("A B\n1.0\n");
  EXPECT_THROW(read_ptrace_worst_case(ragged), std::runtime_error);
  std::istringstream negative("A\n-1.0\n");
  EXPECT_THROW(read_ptrace_worst_case(negative), std::runtime_error);
  std::istringstream ok("A\n1.0\n");
  EXPECT_THROW(read_ptrace_worst_case(ok, -0.5), std::invalid_argument);
}

TEST(Ptrace, EndToEndImportPipeline) {
  // .flp + .ptrace → tile power map, exactly the paper's input shape.
  std::istringstream flp(kQuadFlp);
  auto plan = rasterize_flp(read_flp(flp), 2e-3, 2e-3, 4, 4);
  std::istringstream ptrace(
      "SW SE NW NE\n"
      "0.4 0.2 1.0 0.1\n"
      "0.5 0.3 0.8 0.2\n");
  apply_unit_powers(plan, read_ptrace_worst_case(ptrace));
  EXPECT_NEAR(plan.total_power(), (0.5 + 0.3 + 1.0 + 0.2) * 1.2, 1e-12);
  auto tiles = plan.tile_powers();
  // NW worst case 1.2 W over 4 tiles.
  EXPECT_NEAR(tiles[0], 1.2 / 4.0, 1e-12);
}

TEST(Ptrace, UnknownUnitRejected) {
  std::istringstream flp(kQuadFlp);
  auto plan = rasterize_flp(read_flp(flp), 2e-3, 2e-3, 4, 4);
  EXPECT_THROW(apply_unit_powers(plan, {{"BOGUS", 1.0}}), std::invalid_argument);
}

TEST(Floorplan, SetUnitPowerValidation) {
  std::istringstream flp(kQuadFlp);
  auto plan = rasterize_flp(read_flp(flp), 2e-3, 2e-3, 4, 4);
  EXPECT_THROW(plan.set_unit_power(99, 1.0), std::out_of_range);
  EXPECT_THROW(plan.set_unit_power(0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace tfc::floorplan
