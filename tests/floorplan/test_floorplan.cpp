#include "floorplan/floorplan.h"

#include <gtest/gtest.h>

namespace tfc::floorplan {
namespace {

Floorplan two_unit_plan() {
  std::vector<FunctionalUnit> units = {
      {"left", {{0, 0, 2, 1}}, 1.0},
      {"right", {{0, 1, 2, 1}}, 3.0},
  };
  return Floorplan(2, 2, std::move(units));
}

TEST(TileRect, ContainsAndCount) {
  TileRect r{1, 2, 2, 3};
  EXPECT_EQ(r.tile_count(), 6u);
  EXPECT_TRUE(r.contains({1, 2}));
  EXPECT_TRUE(r.contains({2, 4}));
  EXPECT_FALSE(r.contains({0, 2}));
  EXPECT_FALSE(r.contains({1, 5}));
  EXPECT_FALSE(r.contains({3, 2}));
}

TEST(FunctionalUnit, MultiRectUnit) {
  FunctionalUnit u{"u", {{0, 0, 1, 2}, {1, 0, 1, 1}}, 1.0};
  EXPECT_EQ(u.tile_count(), 3u);
  EXPECT_TRUE(u.contains({1, 0}));
  EXPECT_FALSE(u.contains({1, 1}));
}

TEST(Floorplan, ValidPlanPasses) {
  EXPECT_NO_THROW(two_unit_plan().validate());
}

TEST(Floorplan, OverlapDetected) {
  std::vector<FunctionalUnit> units = {
      {"a", {{0, 0, 2, 2}}, 1.0},
      {"b", {{1, 1, 1, 1}}, 1.0},
  };
  Floorplan plan(2, 2, std::move(units));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(Floorplan, UncoveredTileDetected) {
  std::vector<FunctionalUnit> units = {{"a", {{0, 0, 2, 1}}, 1.0}};
  Floorplan plan(2, 2, std::move(units));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(Floorplan, OutOfGridRectDetected) {
  std::vector<FunctionalUnit> units = {{"a", {{0, 0, 2, 3}}, 1.0}};
  Floorplan plan(2, 2, std::move(units));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(Floorplan, NegativePowerDetected) {
  std::vector<FunctionalUnit> units = {{"a", {{0, 0, 2, 2}}, -1.0}};
  Floorplan plan(2, 2, std::move(units));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(Floorplan, EmptyUnitDetected) {
  std::vector<FunctionalUnit> units = {{"a", {}, 1.0}};
  Floorplan plan(2, 2, std::move(units));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(Floorplan, UnitLookups) {
  auto plan = two_unit_plan();
  EXPECT_EQ(plan.unit_at({0, 0}), std::size_t{0});
  EXPECT_EQ(plan.unit_at({1, 1}), std::size_t{1});
  EXPECT_THROW(plan.unit_at({2, 0}), std::out_of_range);
  EXPECT_NE(plan.find("left"), nullptr);
  EXPECT_EQ(plan.find("bogus"), nullptr);
}

TEST(Floorplan, PowerAndAreaFractions) {
  auto plan = two_unit_plan();
  EXPECT_DOUBLE_EQ(plan.total_power(), 4.0);
  EXPECT_DOUBLE_EQ(plan.power_fraction({"right"}), 0.75);
  EXPECT_DOUBLE_EQ(plan.area_fraction({"right"}), 0.5);
  EXPECT_THROW(plan.power_fraction({"bogus"}), std::invalid_argument);
}

TEST(Floorplan, TilePowersUniformWithinUnit) {
  auto plan = two_unit_plan();
  auto p = plan.tile_powers();
  EXPECT_DOUBLE_EQ(p[0], 0.5);   // left: 1 W over 2 tiles
  EXPECT_DOUBLE_EQ(p[2], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 1.5);   // right: 3 W over 2 tiles
  EXPECT_DOUBLE_EQ(p[3], 1.5);
  EXPECT_DOUBLE_EQ(linalg::sum(p), plan.total_power());
}

TEST(Floorplan, UnitPowerDensity) {
  auto plan = two_unit_plan();
  // right: 3 W over 2 tiles of 1e-6 m² each → 1.5e6 W/m².
  EXPECT_DOUBLE_EQ(plan.unit_power_density(1, 1e-6), 1.5e6);
}

}  // namespace
}  // namespace tfc::floorplan
