#include <gtest/gtest.h>

#include "floorplan/alpha21364.h"
#include "power/power_profile.h"
#include "power/workload.h"

namespace tfc::power {
namespace {

TEST(PowerProfile, ConstructionValidates) {
  EXPECT_THROW(PowerProfile(0, 2, linalg::Vector(0)), std::invalid_argument);
  EXPECT_THROW(PowerProfile(2, 2, linalg::Vector(3)), std::invalid_argument);
  linalg::Vector neg(4);
  neg[1] = -0.1;
  EXPECT_THROW(PowerProfile(2, 2, neg), std::invalid_argument);
}

TEST(PowerProfile, Accessors) {
  linalg::Vector w{1.0, 2.0, 3.0, 4.0};
  PowerProfile p(2, 2, w);
  EXPECT_DOUBLE_EQ(p.total(), 10.0);
  EXPECT_DOUBLE_EQ(p.peak_tile_power(), 4.0);
  EXPECT_DOUBLE_EQ(p.tile_power({1, 0}), 3.0);
  EXPECT_THROW(p.tile_power({2, 0}), std::out_of_range);
}

TEST(PowerProfile, DensityConversions) {
  linalg::Vector w{0.706, 0.0, 0.0, 0.0};
  PowerProfile p(2, 2, w);
  // 0.706 W on 0.25e-6 m² = 2.824e6 W/m² = 282.4 W/cm².
  EXPECT_NEAR(p.peak_density_w_per_cm2(0.25e-6), 282.4, 1e-9);
  EXPECT_NEAR(p.density({0, 0}, 0.25e-6), 2.824e6, 1e-6);
  EXPECT_THROW(p.peak_density_w_per_cm2(0.0), std::invalid_argument);
}

TEST(PowerProfile, Scaling) {
  linalg::Vector w{1.0, 2.0, 3.0, 4.0};
  PowerProfile p(2, 2, w);
  auto q = p.scaled(1.2);
  EXPECT_DOUBLE_EQ(q.total(), 12.0);
  EXPECT_THROW(p.scaled(-1.0), std::invalid_argument);
}

TEST(PowerProfile, FromFloorplanMatchesRasterization) {
  auto plan = floorplan::alpha21364();
  auto p = PowerProfile::from_floorplan(plan);
  EXPECT_NEAR(p.total(), plan.total_power(), 1e-10);
  EXPECT_NEAR(p.peak_density_w_per_cm2(0.25e-6), 282.4, 0.1);
}

TEST(Workload, OptionsValidated) {
  auto plan = floorplan::alpha21364();
  WorkloadOptions o;
  o.timesteps = 0;
  EXPECT_THROW(WorkloadSynthesizer(plan, o), std::invalid_argument);
  o = {};
  o.burst_probability = 1.5;
  EXPECT_THROW(WorkloadSynthesizer(plan, o), std::invalid_argument);
}

TEST(Workload, TraceShapeAndRange) {
  auto plan = floorplan::alpha21364();
  WorkloadSynthesizer synth(plan);
  auto tr = synth.synthesize("gzip");
  EXPECT_EQ(tr.benchmark, "gzip");
  EXPECT_EQ(tr.unit_count(), plan.units().size());
  EXPECT_EQ(tr.length(), WorkloadOptions{}.timesteps);
  for (const auto& row : tr.utilization) {
    for (double x : row) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(Workload, DeterministicInName) {
  auto plan = floorplan::alpha21364();
  WorkloadSynthesizer synth(plan);
  auto a = synth.synthesize("mcf");
  auto b = synth.synthesize("mcf");
  EXPECT_EQ(a.utilization, b.utilization);
  auto c = synth.synthesize("art");
  EXPECT_NE(a.utilization, c.utilization);
}

TEST(Workload, EveryUnitReachesWorstCase) {
  auto plan = floorplan::alpha21364();
  WorkloadSynthesizer synth(plan);
  auto tr = synth.synthesize("equake");
  for (std::size_t u = 0; u < tr.unit_count(); ++u) {
    double peak = 0.0;
    for (double x : tr.utilization[u]) peak = std::max(peak, x);
    EXPECT_DOUBLE_EQ(peak, 1.0) << "unit " << u;
  }
}

TEST(Workload, SuiteNamesAndCount) {
  auto plan = floorplan::alpha21364();
  WorkloadSynthesizer synth(plan);
  auto suite = synth.synthesize_suite(3);
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].benchmark, "bench00");
  EXPECT_EQ(suite[2].benchmark, "bench02");
}

TEST(WorstCase, ReproducesDeclaredUnitPowersExactly) {
  // The full paper pipeline: traces → per-unit worst case → +20 % margin →
  // tiles. Because traces touch full activity, the reduction returns the
  // floorplan's declared worst-case powers exactly.
  auto plan = floorplan::alpha21364();
  WorkloadSynthesizer synth(plan);
  auto profile = worst_case_profile(plan, synth.synthesize_suite(5));
  EXPECT_NEAR(profile.total(), 20.6, 0.05);
  auto direct = PowerProfile::from_floorplan(plan);
  EXPECT_TRUE(linalg::approx_equal(profile.tile_powers(), direct.tile_powers(), 1e-9));
}

TEST(WorstCase, PartialActivityScalesDown) {
  auto plan = floorplan::alpha21364();
  ActivityTrace half;
  half.benchmark = "half";
  half.utilization.assign(plan.units().size(),
                          std::vector<double>(10, 0.5));
  auto profile = worst_case_profile(plan, {half});
  EXPECT_NEAR(profile.total(), 0.5 * 20.6, 0.05);
}

TEST(WorstCase, InputValidation) {
  auto plan = floorplan::alpha21364();
  EXPECT_THROW(worst_case_profile(plan, {}), std::invalid_argument);
  ActivityTrace bad;
  bad.utilization.assign(2, std::vector<double>(5, 0.5));  // wrong unit count
  EXPECT_THROW(worst_case_profile(plan, {bad}), std::invalid_argument);
  WorkloadSynthesizer synth(plan);
  EXPECT_THROW(worst_case_profile(plan, synth.synthesize_suite(1), -0.5),
               std::invalid_argument);
}

TEST(WorstCase, MarginScalesLinearly) {
  auto plan = floorplan::alpha21364();
  WorkloadSynthesizer synth(plan);
  auto suite = synth.synthesize_suite(2);
  auto with = worst_case_profile(plan, suite, 0.20);
  auto without = worst_case_profile(plan, suite, 0.0);
  // nominal = peak/1.2; margin 0 gives nominal, margin 0.2 gives peak.
  EXPECT_NEAR(with.total() / without.total(), 1.2, 1e-9);
}

}  // namespace
}  // namespace tfc::power
