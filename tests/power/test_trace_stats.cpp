#include "power/trace_stats.h"

#include <gtest/gtest.h>

#include "floorplan/alpha21364.h"

namespace tfc::power {
namespace {

ActivityTrace manual_trace() {
  ActivityTrace t;
  t.benchmark = "manual";
  t.utilization = {
      {0.0, 0.5, 1.0, 0.5},   // unit 0
      {1.0, 0.5, 0.0, 0.5},   // unit 1: anti-correlated with 0
      {0.3, 0.3, 0.3, 0.3},   // unit 2: constant
  };
  return t;
}

TEST(TraceStats, PerUnitValues) {
  auto stats = trace_statistics(manual_trace());
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_DOUBLE_EQ(stats[0].mean, 0.5);
  EXPECT_DOUBLE_EQ(stats[0].peak, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].hot_duty, 0.25);
  EXPECT_DOUBLE_EQ(stats[2].mean, 0.3);
  EXPECT_DOUBLE_EQ(stats[2].peak, 0.3);
  EXPECT_DOUBLE_EQ(stats[2].hot_duty, 0.0);
}

TEST(TraceStats, P95NearTop) {
  ActivityTrace t;
  t.utilization = {std::vector<double>(100)};
  for (std::size_t k = 0; k < 100; ++k) t.utilization[0][k] = double(k) / 99.0;
  auto stats = trace_statistics(t);
  EXPECT_NEAR(stats[0].p95, 0.95, 0.02);
}

TEST(TraceStats, EmptyTraceThrows) {
  ActivityTrace t;
  EXPECT_THROW(trace_statistics(t), std::invalid_argument);
}

TEST(TraceStats, CorrelationSigns) {
  auto t = manual_trace();
  EXPECT_NEAR(trace_correlation(t, 0, 0), 1.0, 1e-12);
  EXPECT_NEAR(trace_correlation(t, 0, 1), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(trace_correlation(t, 0, 2), 0.0);  // zero-variance partner
  EXPECT_THROW(trace_correlation(t, 0, 9), std::invalid_argument);
}

TEST(TraceStats, SynthesizedTracesHaveSaneStatistics) {
  auto plan = floorplan::alpha21364();
  WorkloadSynthesizer synth(plan);
  auto trace = synth.synthesize("gcc");
  auto stats = trace_statistics(trace);
  ASSERT_EQ(stats.size(), plan.units().size());
  for (const auto& s : stats) {
    EXPECT_GT(s.mean, 0.05);
    EXPECT_LT(s.mean, 1.0);
    EXPECT_DOUBLE_EQ(s.peak, 1.0);  // worst case touched (guaranteed)
    EXPECT_GE(s.p95, s.mean);
    EXPECT_LE(s.hot_duty, 1.0);
  }
}

}  // namespace
}  // namespace tfc::power
