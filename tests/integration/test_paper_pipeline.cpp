/// End-to-end integration tests at the paper's experimental conditions:
/// floorplan → synthetic workloads → worst-case map → GreedyDeploy +
/// current optimization → Table-I-shaped results.
#include <gtest/gtest.h>

#include "core/cooling_system.h"
#include "core/multipin.h"
#include "floorplan/alpha21364.h"
#include "floorplan/random_chip.h"
#include "power/workload.h"
#include "thermal/validation.h"

namespace tfc {
namespace {

linalg::Vector worst_case_map(const floorplan::Floorplan& plan) {
  power::WorkloadSynthesizer synth(plan);
  return power::worst_case_profile(plan, synth.synthesize_suite(8)).tile_powers();
}

core::DesignRequest alpha_request() {
  core::DesignRequest req;
  req.chip_name = "Alpha";
  req.tile_powers = worst_case_map(floorplan::alpha21364());
  req.theta_limit_celsius = 85.0;
  return req;
}

TEST(PaperPipeline, AlphaNoTecPeakNearPublished) {
  // Paper Table I row 1: θpeak = 91.8 °C without TECs (ours is calibrated to
  // the same regime; the match is in shape, not in the third digit).
  auto res = core::design_cooling_system(alpha_request());
  EXPECT_NEAR(res.peak_no_tec_celsius, 91.8, 1.5);
}

TEST(PaperPipeline, AlphaGreedySucceedsAt85) {
  auto res = core::design_cooling_system(alpha_request());
  EXPECT_TRUE(res.success);
  EXPECT_LE(res.peak_greedy_celsius, 85.0);
  // Published: 16 TEC devices; same regime (the hot cluster, not the chip).
  EXPECT_GE(res.tec_count, 8u);
  EXPECT_LE(res.tec_count, 24u);
  // Published: I_opt = 6.10 A.
  EXPECT_GT(res.current, 3.0);
  EXPECT_LT(res.current, 10.0);
  // Published: P_TEC = 1.31 W ("reasonably small").
  EXPECT_GT(res.tec_power, 0.4);
  EXPECT_LT(res.tec_power, 3.0);
}

TEST(PaperPipeline, AlphaCoolingSwingInPublishedBand) {
  // "the active cooling swing can reach 7.5 ºC"; Chowdhury et al. report
  // 5.4–9.6 °C of on-demand cooling.
  auto res = core::design_cooling_system(alpha_request());
  const double swing = res.peak_no_tec_celsius - res.peak_greedy_celsius;
  EXPECT_GE(swing, 5.0);
  EXPECT_LE(swing, 10.5);
}

TEST(PaperPipeline, AlphaDeploymentCoversHotClusterOnly) {
  // Figure 7(b): only the high-density units are covered; the L2 half of the
  // die gets nothing.
  auto res = core::design_cooling_system(alpha_request());
  ASSERT_TRUE(res.success);
  for (std::size_t r = 6; r < 12; ++r) {
    for (std::size_t c = 0; c < 12; ++c) {
      EXPECT_FALSE(res.deployment.test(r, c)) << "TEC over L2 at (" << r << "," << c << ")";
    }
  }
  // The IntReg tiles (rows 4-5, cols 3-4) are covered.
  EXPECT_TRUE(res.deployment.test(4, 3));
  EXPECT_TRUE(res.deployment.test(5, 4));
}

TEST(PaperPipeline, AlphaFullCoverIsWorse) {
  // Section VI.A: "placing excessive TEC devices would decrease the
  // efficiency of the active cooling system" — SwingLoss > 0.
  auto res = core::design_cooling_system(alpha_request());
  EXPECT_GT(res.swing_loss_celsius, 0.5);
  EXPECT_GT(res.full_cover_min_peak_celsius, 85.0);
}

TEST(PaperPipeline, AlphaRuntimeWellUnderPaperBudget) {
  // "the execution time of our algorithm is less than 3 minutes"; "within 2
  // minutes" for Alpha. Modern hardware + sparse solvers: a second or two.
  auto res = core::design_cooling_system(alpha_request());
  EXPECT_LT(res.runtime_ms, 120000.0);
}

TEST(PaperPipeline, AlphaConvexityCertified) {
  auto req = alpha_request();
  req.run_full_cover = false;
  req.run_convexity_certificate = true;
  auto res = core::design_cooling_system(req);
  ASSERT_TRUE(res.convexity.has_value());
  EXPECT_TRUE(res.convexity->certified);
}

TEST(PaperPipeline, AlphaModelValidatesAgainstFineGrid) {
  // Section VI: compact model vs HotSpot agreed within 1.5 °C worst case.
  thermal::PackageModelOptions opts;  // paper-default geometry
  auto report = thermal::validate_against_reference(
      opts, worst_case_map(floorplan::alpha21364()));
  EXPECT_LT(report.max_abs_diff, 1.5);
}

TEST(PaperPipeline, HypotheticalChipRunsEndToEnd) {
  core::DesignRequest req;
  req.chip_name = floorplan::hypothetical_chip_name(5);
  req.tile_powers = worst_case_map(floorplan::hypothetical_chip(5));
  req.theta_limit_celsius = 85.0;
  auto res = core::design_cooling_system(req);
  EXPECT_GT(res.peak_no_tec_celsius, 85.0);  // needs TECs (generator regime)
  if (res.success) {
    EXPECT_LE(res.peak_greedy_celsius, 85.0);
    EXPECT_GT(res.tec_count, 0u);
  } else {
    // The paper's HC06/HC09 case: relaxing the limit makes it feasible.
    core::DesignRequest relaxed = req;
    relaxed.theta_limit_celsius = res.peak_no_tec_celsius - 2.0;
    bool ok = false;
    for (int extra = 0; extra < 12 && !ok; ++extra) {
      relaxed.theta_limit_celsius += 1.0;
      ok = core::design_cooling_system(relaxed).success;
    }
    EXPECT_TRUE(ok);
  }
}

TEST(PaperPipeline, MultiPinExtensionBeatsSinglePinOnAlpha) {
  auto res = core::design_cooling_system(alpha_request());
  ASSERT_TRUE(res.success);
  auto req = alpha_request();
  auto sys = tec::ElectroThermalSystem::assemble(req.geometry, res.deployment,
                                                 req.tile_powers, req.device);
  core::MultiPinOptions mp_opts;
  mp_opts.max_sweeps = 2;  // keep the test fast
  auto mp = core::optimize_multi_pin(sys, res.current, mp_opts);
  EXPECT_LE(mp.peak_tile_temperature,
            thermal::to_kelvin(res.peak_greedy_celsius) + 1e-9);
}

}  // namespace
}  // namespace tfc
