/// Table-I shape properties, asserted per benchmark chip (parameterized
/// sweep over Alpha + HC01..HC10). These are the row-level claims of the
/// paper's evaluation, checked as invariants rather than as one-off bench
/// output.
#include <gtest/gtest.h>

#include "core/cooling_system.h"
#include "floorplan/alpha21364.h"
#include "floorplan/random_chip.h"
#include "power/workload.h"

namespace tfc {
namespace {

struct Chip {
  std::string name;
  linalg::Vector powers;
};

Chip chip_for(std::size_t index) {
  auto plan = index == 0 ? floorplan::alpha21364() : floorplan::hypothetical_chip(index);
  power::WorkloadSynthesizer synth(plan);
  auto profile = power::worst_case_profile(plan, synth.synthesize_suite(8));
  return {index == 0 ? "Alpha" : floorplan::hypothetical_chip_name(index),
          profile.tile_powers()};
}

core::DesignResult design_with_fallback(const Chip& chip) {
  core::DesignRequest req;
  req.chip_name = chip.name;
  req.tile_powers = chip.powers;
  req.theta_limit_celsius = 85.0;
  auto res = core::design_cooling_system(req);
  while (!res.success && req.theta_limit_celsius < 110.0) {
    req.theta_limit_celsius += 1.0;
    res = core::design_cooling_system(req);
  }
  return res;
}

class Table1Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Table1Sweep, RowShapeMatchesPaper) {
  const auto chip = chip_for(GetParam());
  const auto res = design_with_fallback(chip);

  // Every benchmark chip needs active cooling (θpeak above 85 °C bare).
  EXPECT_GT(res.peak_no_tec_celsius, 85.0) << chip.name;

  // The designer finds a feasible configuration (possibly at a relaxed
  // limit, the paper's HC06/HC09 mechanism).
  ASSERT_TRUE(res.success) << chip.name;
  EXPECT_LE(res.peak_greedy_celsius, res.theta_limit_celsius + 1e-9);

  // Table-I magnitude bands (generous envelopes around the paper's 11 rows).
  EXPECT_GE(res.tec_count, 5u) << chip.name;
  EXPECT_LE(res.tec_count, 40u) << chip.name;
  EXPECT_GT(res.current, 2.0) << chip.name;
  EXPECT_LT(res.current, 14.0) << chip.name;
  EXPECT_GT(res.tec_power, 0.2) << chip.name;
  EXPECT_LT(res.tec_power, 8.0) << chip.name;

  // Operating far below the runaway limit.
  ASSERT_TRUE(res.lambda_m.has_value()) << chip.name;
  EXPECT_LT(res.current, 0.25 * *res.lambda_m) << chip.name;

  // Full cover is never better than greedy (positive SwingLoss) and cannot
  // meet the 85 °C limit anywhere greedy barely meets it.
  EXPECT_GT(res.swing_loss_celsius, 0.0) << chip.name;

  // Cooling swing within the Chowdhury-reported on-demand band, stretched
  // for the hottest random chips.
  const double swing = res.peak_no_tec_celsius - res.peak_greedy_celsius;
  EXPECT_GE(swing, 4.0) << chip.name;
  EXPECT_LE(swing, 22.0) << chip.name;

  // Runtime claim, with three orders of margin over 2010 hardware.
  EXPECT_LT(res.runtime_ms, 180000.0) << chip.name;
}

INSTANTIATE_TEST_SUITE_P(AllChips, Table1Sweep, ::testing::Range<std::size_t>(0, 11));

}  // namespace
}  // namespace tfc
