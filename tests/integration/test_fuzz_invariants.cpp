/// Seeded randomized sweeps asserting the library's physical and
/// matrix-theoretic invariants across arbitrary (valid) configurations —
/// failure injection for the assembly and solver paths.
#include <gtest/gtest.h>

#include <random>

#include "linalg/cholesky.h"
#include "linalg/properties.h"
#include "tec/electro_thermal.h"
#include "tec/runaway.h"

namespace tfc {
namespace {

struct FuzzCase {
  thermal::PackageGeometry geometry;
  TileMask deployment;
  linalg::Vector powers;
  double current_fraction = 0.0;  // of λ_m
};

FuzzCase make_case(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> grid(3, 7);
  std::uniform_real_distribution<double> die_mm(2.0, 8.0);
  std::uniform_real_distribution<double> frac(0.0, 0.9);
  std::uniform_real_distribution<double> power(0.0, 0.5);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  FuzzCase c;
  c.geometry.tile_rows = grid(rng);
  c.geometry.tile_cols = grid(rng);
  const double die = die_mm(rng) * 1e-3;
  c.geometry.die_width = die;
  c.geometry.die_height = die * double(c.geometry.tile_rows) /
                          double(c.geometry.tile_cols);  // square-ish tiles
  c.geometry.spreader_side = std::max(30e-3, die * 2.0);

  c.deployment = TileMask(c.geometry.tile_rows, c.geometry.tile_cols);
  c.powers = linalg::Vector(c.geometry.tile_count());
  bool any_tec = false;
  for (std::size_t t = 0; t < c.geometry.tile_count(); ++t) {
    c.powers[t] = power(rng);
    if (coin(rng) < 0.25) {
      c.deployment.set(t / c.geometry.tile_cols, t % c.geometry.tile_cols);
      any_tec = true;
    }
  }
  if (!any_tec) c.deployment.set(0, 0);
  c.current_fraction = frac(rng);
  return c;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, AssembledSystemSatisfiesAllInvariants) {
  const FuzzCase c = make_case(GetParam());
  auto sys = tec::ElectroThermalSystem::assemble(
      c.geometry, c.deployment, c.powers, tec::TecDeviceParams::chowdhury_superlattice());

  // Lemma 1: irreducible PD Stieltjes.
  const auto& g = sys.matrix_g();
  ASSERT_TRUE(g.is_symmetric(1e-12));
  ASSERT_TRUE(linalg::is_stieltjes(g));
  ASSERT_TRUE(linalg::is_irreducible(g));
  ASSERT_TRUE(linalg::is_positive_definite(g.to_dense()));

  // Theorem 1: solvable strictly below λ_m, unsolvable above.
  auto lm = tec::runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  const double i = c.current_fraction * *lm;
  auto op = sys.solve(i);
  ASSERT_TRUE(op.has_value()) << "fraction " << c.current_fraction;
  EXPECT_FALSE(sys.solve(1.02 * *lm).has_value());

  // Physics: all temperatures at or above ambient minus rounding; energy
  // balance silicon power + TEC power == heat to ambient.
  const double ambient = c.geometry.ambient;
  double q_out = 0.0;
  for (std::size_t k = 0; k < sys.node_count(); ++k) {
    const double ga = sys.model().network().ambient_conductance(k);
    if (ga > 0.0) q_out += ga * (op->theta[k] - ambient);
  }
  const double p_in = linalg::sum(sys.power(0.0)) + op->tec_input_power;
  EXPECT_NEAR(q_out, p_in, 1e-6 * std::max(1.0, p_in)) << "energy imbalance";

  // Lemma 3 (sampled): response columns nonnegative below λ_m.
  auto f = linalg::CholeskyFactor::factor(sys.system_matrix(i).to_dense());
  ASSERT_TRUE(f.has_value());
  std::mt19937_64 rng(GetParam() ^ 0xabcdef);
  std::uniform_int_distribution<std::size_t> pick(0, sys.node_count() - 1);
  for (int rep = 0; rep < 3; ++rep) {
    auto col = f->inverse_column(pick(rng));
    for (std::size_t k = 0; k < col.size(); ++k) {
      ASSERT_GE(col[k], -1e-10) << "negative response entry";
    }
  }
}

TEST_P(FuzzSweep, MonotonicityInPower) {
  const FuzzCase c = make_case(GetParam() ^ 0x5555);
  auto sys = tec::ElectroThermalSystem::assemble(
      c.geometry, c.deployment, c.powers, tec::TecDeviceParams::chowdhury_superlattice());
  auto lm = tec::runaway_limit(sys);
  const double i = 0.3 * *lm;
  auto base = sys.solve(i);
  ASSERT_TRUE(base.has_value());

  // Raise one random tile's power: no node may cool (inverse positivity).
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::size_t> pick(0, c.geometry.tile_count() - 1);
  linalg::Vector powers = c.powers;
  powers[pick(rng)] += 0.4;
  auto hotter_sys = tec::ElectroThermalSystem::assemble(
      c.geometry, c.deployment, powers, tec::TecDeviceParams::chowdhury_superlattice());
  auto hotter = hotter_sys.solve(i);
  ASSERT_TRUE(hotter.has_value());
  for (std::size_t k = 0; k < base->theta.size(); ++k) {
    EXPECT_GE(hotter->theta[k] + 1e-10, base->theta[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace tfc
