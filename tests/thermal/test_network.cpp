#include "thermal/network.h"

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/properties.h"

namespace tfc::thermal {
namespace {

TEST(ConductanceNetwork, EmptyNetwork) {
  ConductanceNetwork net;
  EXPECT_EQ(net.node_count(), 0u);
  EXPECT_EQ(net.conductance_matrix().rows(), 0u);
}

TEST(ConductanceNetwork, AddNodeReturnsSequentialIds) {
  ConductanceNetwork net;
  EXPECT_EQ(net.add_node({}), 0u);
  EXPECT_EQ(net.add_node({}), 1u);
  EXPECT_EQ(net.node_count(), 2u);
}

TEST(ConductanceNetwork, TwoNodeAssembly) {
  ConductanceNetwork net;
  auto a = net.add_node({});
  auto b = net.add_node({});
  net.add_conductance(a, b, 2.0);
  net.add_ambient_leg(a, 1.0);
  auto g = net.conductance_matrix();
  // G = [[3, -2], [-2, 2]]
  EXPECT_DOUBLE_EQ(g.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.at(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(g.at(1, 1), 2.0);
}

TEST(ConductanceNetwork, MatrixIsStieltjes) {
  ConductanceNetwork net;
  for (int i = 0; i < 5; ++i) net.add_node({});
  for (std::size_t i = 0; i + 1 < 5; ++i) net.add_conductance(i, i + 1, 1.0 + double(i));
  net.add_ambient_leg(4, 0.5);
  auto g = net.conductance_matrix();
  EXPECT_TRUE(linalg::is_stieltjes(g));
  EXPECT_TRUE(linalg::is_irreducible(g));
  EXPECT_TRUE(linalg::is_positive_definite(g.to_dense()));
}

TEST(ConductanceNetwork, ParallelConductancesSum) {
  ConductanceNetwork net;
  auto a = net.add_node({});
  auto b = net.add_node({});
  net.add_conductance(a, b, 1.0);
  net.add_conductance(a, b, 2.5);
  auto g = net.conductance_matrix();
  EXPECT_DOUBLE_EQ(g.at(0, 1), -3.5);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 3.5);
}

TEST(ConductanceNetwork, InvalidEdgesThrow) {
  ConductanceNetwork net;
  auto a = net.add_node({});
  auto b = net.add_node({});
  EXPECT_THROW(net.add_conductance(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW(net.add_conductance(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(net.add_conductance(a, b, -1.0), std::invalid_argument);
  EXPECT_THROW(net.add_conductance(a, 7, 1.0), std::invalid_argument);
  EXPECT_THROW(net.add_ambient_leg(a, 0.0), std::invalid_argument);
  EXPECT_THROW(net.add_power(9, 1.0), std::invalid_argument);
}

TEST(ConductanceNetwork, PowerAccumulatesAndOverwrites) {
  ConductanceNetwork net;
  auto a = net.add_node({});
  net.add_power(a, 1.0);
  net.add_power(a, 0.5);
  EXPECT_DOUBLE_EQ(net.power_vector()[a], 1.5);
  net.set_power(a, 2.0);
  EXPECT_DOUBLE_EQ(net.power_vector()[a], 2.0);
  EXPECT_DOUBLE_EQ(net.total_power(), 2.0);
}

TEST(ConductanceNetwork, RhsIncludesAmbientContribution) {
  ConductanceNetwork net;
  auto a = net.add_node({});
  auto b = net.add_node({});
  net.add_conductance(a, b, 1.0);
  net.add_ambient_leg(b, 2.0);
  net.set_power(a, 3.0);
  auto r = net.rhs(300.0);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 600.0);
}

TEST(ConductanceNetwork, AnalyticTwoNodeSolution) {
  // a --1-- b --2-- ambient(300 K), 3 W at a:
  // θ_b = 300 + 3/2 = 301.5; θ_a = θ_b + 3/1 = 304.5.
  ConductanceNetwork net;
  auto a = net.add_node({});
  auto b = net.add_node({});
  net.add_conductance(a, b, 1.0);
  net.add_ambient_leg(b, 2.0);
  net.set_power(a, 3.0);
  auto g = net.conductance_matrix().to_dense();
  auto sol = linalg::CholeskyFactor::factor(g)->solve(net.rhs(300.0));
  EXPECT_NEAR(sol[0], 304.5, 1e-10);
  EXPECT_NEAR(sol[1], 301.5, 1e-10);
}

TEST(ConductanceNetwork, CapacitanceVectorFromNodeInfo) {
  ConductanceNetwork net;
  NodeInfo info;
  info.capacitance = 4.0;
  net.add_node(info);
  info.capacitance = 5.0;
  net.add_node(info);
  auto c = net.capacitance_vector();
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 5.0);
}

TEST(NodeKindNames, AllDistinct) {
  EXPECT_EQ(to_string(NodeKind::kSilicon), "silicon");
  EXPECT_EQ(to_string(NodeKind::kTecCold), "tec_cold");
  EXPECT_EQ(to_string(NodeKind::kTecHot), "tec_hot");
  EXPECT_EQ(to_string(NodeKind::kSinkOuterCorner), "sink_outer_corner");
}

}  // namespace
}  // namespace tfc::thermal
