#include "thermal/nonlinear.h"

#include <gtest/gtest.h>

#include "thermal/steady_state.h"

namespace tfc::thermal {
namespace {

PackageModelOptions small_options() {
  PackageModelOptions o;
  o.geometry.tile_rows = 4;
  o.geometry.tile_cols = 4;
  o.geometry.die_width = 2e-3;
  o.geometry.die_height = 2e-3;
  return o;
}

linalg::Vector powers() {
  linalg::Vector p(16, 0.12);
  p[5] = 0.7;
  return p;
}

TEST(Nonlinear, ConvergesOnSmallPackage) {
  auto res = solve_steady_state_nonlinear(small_options(), powers());
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.iterations, 2u);
  EXPECT_GT(res.silicon_conductivity, 0.0);
}

TEST(Nonlinear, HotterThanLinearModel) {
  // Above the reference temperature, k(T) < k_ref, so the hot spot must be
  // hotter than the constant-k prediction.
  auto opts = small_options();
  auto p = powers();
  PackageModel linear = PackageModel::build(opts);
  linear.set_tile_powers(p);
  const double peak_linear = linear.peak_tile_temperature(solve_steady_state(linear));

  auto res = solve_steady_state_nonlinear(opts, p);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(linalg::max_entry(res.tile_temperatures), peak_linear);
  EXPECT_LT(res.silicon_conductivity,
            opts.geometry.die_material.thermal_conductivity);
}

TEST(Nonlinear, ZeroExponentReducesToLinear) {
  auto opts = small_options();
  auto p = powers();
  NonlinearOptions nl;
  nl.exponent = 0.0;
  auto res = solve_steady_state_nonlinear(opts, p, nl);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 2u);  // first solve + convergence confirmation
  PackageModel linear = PackageModel::build(opts);
  linear.set_tile_powers(p);
  EXPECT_TRUE(approx_equal(res.theta, solve_steady_state(linear), 1e-9));
  EXPECT_DOUBLE_EQ(res.silicon_conductivity,
                   opts.geometry.die_material.thermal_conductivity);
}

TEST(Nonlinear, EffectGrowsWithPower) {
  // Nonlinear-vs-linear gap should widen as the die runs hotter.
  auto opts = small_options();
  const auto gap = [&](double scale) {
    linalg::Vector p = powers();
    p *= scale;
    PackageModel linear = PackageModel::build(opts);
    linear.set_tile_powers(p);
    const double lin = linear.peak_tile_temperature(solve_steady_state(linear));
    auto res = solve_steady_state_nonlinear(opts, p);
    return linalg::max_entry(res.tile_temperatures) - lin;
  };
  EXPECT_GT(gap(1.5), gap(0.5));
}

TEST(Nonlinear, BadOptionsThrow) {
  NonlinearOptions nl;
  nl.max_iterations = 0;
  EXPECT_THROW(solve_steady_state_nonlinear(small_options(), powers(), nl),
               std::invalid_argument);
  nl = {};
  nl.tol = 0.0;
  EXPECT_THROW(solve_steady_state_nonlinear(small_options(), powers(), nl),
               std::invalid_argument);
  nl = {};
  nl.reference_temperature = -1.0;
  EXPECT_THROW(solve_steady_state_nonlinear(small_options(), powers(), nl),
               std::invalid_argument);
}

TEST(Nonlinear, IterationCapRespected) {
  NonlinearOptions nl;
  nl.max_iterations = 1;
  auto res = solve_steady_state_nonlinear(small_options(), powers(), nl);
  EXPECT_FALSE(res.converged);  // one solve can never confirm convergence
  EXPECT_EQ(res.iterations, 1u);
}

}  // namespace
}  // namespace tfc::thermal
