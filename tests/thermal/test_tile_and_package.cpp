#include <gtest/gtest.h>

#include "common/tile.h"
#include "thermal/material.h"
#include "thermal/package.h"

namespace tfc {
namespace {

TEST(TileMask, DefaultEmpty) {
  TileMask m;
  EXPECT_EQ(m.grid_size(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(TileMask, SetTestCount) {
  TileMask m(3, 4);
  EXPECT_FALSE(m.test(1, 2));
  m.set(1, 2);
  EXPECT_TRUE(m.test(1, 2));
  EXPECT_EQ(m.count(), 1u);
  m.set(1, 2, false);
  EXPECT_TRUE(m.empty());
}

TEST(TileMask, OutOfRangeThrows) {
  TileMask m(2, 2);
  EXPECT_THROW(m.test(2, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 2), std::out_of_range);
}

TEST(TileMask, TilesRowMajor) {
  TileMask m(2, 2);
  m.set(1, 0);
  m.set(0, 1);
  auto tiles = m.tiles();
  ASSERT_EQ(tiles.size(), 2u);
  EXPECT_EQ(tiles[0], (Tile{0, 1}));
  EXPECT_EQ(tiles[1], (Tile{1, 0}));
}

TEST(TileMask, UnionAndSubset) {
  TileMask a(2, 2), b(2, 2);
  a.set(0, 0);
  b.set(1, 1);
  TileMask u = a;
  u |= b;
  EXPECT_EQ(u.count(), 2u);
  EXPECT_TRUE(a.subset_of(u));
  EXPECT_TRUE(b.subset_of(u));
  EXPECT_FALSE(u.subset_of(a));
}

TEST(TileMask, ShapeMismatchThrows) {
  TileMask a(2, 2), b(3, 3);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a.subset_of(b), std::invalid_argument);
}

TEST(TileMask, FullMask) {
  auto m = TileMask::full(2, 3);
  EXPECT_EQ(m.count(), 6u);
}

TEST(Material, PresetsValid) {
  for (const auto& m : {thermal::silicon(), thermal::thermal_interface(),
                        thermal::copper(), thermal::aluminum()}) {
    EXPECT_NO_THROW(m.validate());
    EXPECT_GT(m.thermal_conductivity, 0.0);
  }
  EXPECT_GT(thermal::copper().thermal_conductivity,
            thermal::silicon().thermal_conductivity);
}

TEST(Material, ValidationRejectsNonPhysical) {
  thermal::Material m{"bogus", 0.0, 1.0};
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = {"bogus", 1.0, -2.0};
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(PackageGeometry, DefaultsMatchPaperGrid) {
  thermal::PackageGeometry g;
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.tile_rows, 12u);
  EXPECT_EQ(g.tile_cols, 12u);
  EXPECT_NEAR(g.tile_pitch_x(), 0.5e-3, 1e-12);  // 0.5 mm TEC footprint
  EXPECT_NEAR(g.tile_area(), 0.25e-6, 1e-15);
  EXPECT_EQ(g.tile_count(), 144u);
}

TEST(PackageGeometry, KelvinConversions) {
  EXPECT_DOUBLE_EQ(thermal::to_kelvin(0.0), 273.15);
  EXPECT_DOUBLE_EQ(thermal::to_celsius(thermal::to_kelvin(85.0)), 85.0);
}

TEST(PackageGeometry, ValidateCatchesBadValues) {
  thermal::PackageGeometry g;
  g.die_thickness = 0.0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {};
  g.tile_rows = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {};
  g.sink_side = g.spreader_side / 2.0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {};
  g.convection_resistance = -1.0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(PackageGeometry, Overhangs) {
  thermal::PackageGeometry g;
  EXPECT_NEAR(g.spreader_overhang(), 12e-3, 1e-12);
  EXPECT_NEAR(g.sink_overhang(), 15e-3, 1e-12);
}

}  // namespace
}  // namespace tfc
