#include <gtest/gtest.h>

#include "thermal/package_model.h"
#include "thermal/steady_state.h"
#include "thermal/transient.h"
#include "thermal/validation.h"

namespace tfc::thermal {
namespace {

PackageModelOptions small_options() {
  PackageModelOptions o;
  o.geometry.tile_rows = 4;
  o.geometry.tile_cols = 4;
  o.geometry.die_width = 2e-3;
  o.geometry.die_height = 2e-3;
  return o;
}

linalg::Vector test_powers() {
  linalg::Vector p(16, 0.1);
  p[5] = 0.6;
  p[10] = 0.4;
  return p;
}

TEST(SteadyState, BackendsAgree) {
  PackageModel m = PackageModel::build(small_options());
  m.set_tile_powers(test_powers());
  SteadyStateOptions direct, cg, dense;
  cg.backend = SolverBackend::kConjugateGradient;
  dense.backend = SolverBackend::kDenseCholesky;
  auto t1 = solve_steady_state(m, direct);
  auto t2 = solve_steady_state(m, cg);
  auto t3 = solve_steady_state(m, dense);
  EXPECT_TRUE(approx_equal(t1, t2, 1e-7));
  EXPECT_TRUE(approx_equal(t1, t3, 1e-8));
}

TEST(SteadyState, SingularMatrixThrows) {
  // No ambient legs: floating network, G singular.
  ConductanceNetwork net;
  auto a = net.add_node({});
  auto b = net.add_node({});
  net.add_conductance(a, b, 1.0);
  EXPECT_THROW(solve_steady_state(net.conductance_matrix(), net.rhs(300.0)),
               std::runtime_error);
}

TEST(Transient, ConvergesToSteadyState) {
  PackageModel m = PackageModel::build(small_options());
  m.set_tile_powers(test_powers());
  const auto& net = m.network();
  auto g = net.conductance_matrix();
  auto rhs = net.rhs(m.geometry().ambient);
  auto steady = solve_steady_state(m);

  // The sink time constant is ~80 s; integrate many multiples of it.
  TransientSolver ts(g, net.capacitance_vector(), 0.2);
  linalg::Vector theta(net.node_count(), m.geometry().ambient);
  for (int step = 0; step < 8000; ++step) theta = ts.step(theta, rhs);
  EXPECT_TRUE(approx_equal(theta, steady, 1e-3));
}

TEST(Transient, MonotoneHeatingFromAmbient) {
  PackageModel m = PackageModel::build(small_options());
  m.set_tile_powers(test_powers());
  const auto& net = m.network();
  TransientSolver ts(net.conductance_matrix(), net.capacitance_vector(), 1e-4);
  auto rhs = net.rhs(m.geometry().ambient);
  linalg::Vector theta(net.node_count(), m.geometry().ambient);
  double prev_peak = m.peak_tile_temperature(theta);
  for (int step = 0; step < 50; ++step) {
    theta = ts.step(theta, rhs);
    const double peak = m.peak_tile_temperature(theta);
    EXPECT_GE(peak + 1e-12, prev_peak);
    prev_peak = peak;
  }
}

TEST(Transient, RunWithTimeVaryingPower) {
  PackageModel m = PackageModel::build(small_options());
  const auto& net = m.network();
  TransientSolver ts(net.conductance_matrix(), net.capacitance_vector(), 1e-3);
  // Power pulse on for the first 10 steps, off afterwards.
  PackageModel pulsed = PackageModel::build(small_options());
  pulsed.set_tile_powers(test_powers());
  auto rhs_on = pulsed.network().rhs(m.geometry().ambient);
  auto rhs_off = net.rhs(m.geometry().ambient);
  linalg::Vector theta(net.node_count(), m.geometry().ambient);
  theta = ts.run(theta, 200, [&](std::size_t s) { return s < 10 ? rhs_on : rhs_off; });
  // After a long off period the package relaxes back toward ambient.
  EXPECT_NEAR(m.peak_tile_temperature(theta), m.geometry().ambient, 0.5);
}

TEST(Transient, StepIntoMatchesStepBitwise) {
  PackageModel m = PackageModel::build(small_options());
  m.set_tile_powers(test_powers());
  const auto& net = m.network();
  TransientSolver ts(net.conductance_matrix(), net.capacitance_vector(), 1e-3);
  auto rhs = net.rhs(m.geometry().ambient);
  linalg::Vector theta(net.node_count(), m.geometry().ambient);
  linalg::Vector out(net.node_count());
  for (int step = 0; step < 20; ++step) {
    auto expected = ts.step(theta, rhs);
    ts.step_into(theta, rhs, out);
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], expected[i]) << "step " << step << " node " << i;
    }
    theta = expected;
  }
}

TEST(Transient, SetDtMatchesFreshSolver) {
  PackageModel m = PackageModel::build(small_options());
  m.set_tile_powers(test_powers());
  const auto& net = m.network();
  auto g = net.conductance_matrix();
  auto c = net.capacitance_vector();
  auto rhs = net.rhs(m.geometry().ambient);
  linalg::Vector theta(net.node_count(), m.geometry().ambient + 5.0);

  TransientSolver mutated(g, c, 1e-3);
  mutated.set_dt(2.5e-2);
  EXPECT_DOUBLE_EQ(mutated.dt(), 2.5e-2);
  TransientSolver fresh(g, c, 2.5e-2);
  auto a = mutated.step(theta, rhs);
  auto b = fresh.step(theta, rhs);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  EXPECT_THROW(mutated.set_dt(0.0), std::invalid_argument);
}

TEST(Transient, RestampMatchesFreshSolver) {
  // Re-stamping with a scaled conductance (same pattern) must reproduce a
  // freshly-constructed solver exactly — the refactorize path reuses the
  // original symbolic analysis.
  PackageModel m = PackageModel::build(small_options());
  m.set_tile_powers(test_powers());
  const auto& net = m.network();
  auto g = net.conductance_matrix();
  auto c = net.capacitance_vector();
  auto rhs = net.rhs(m.geometry().ambient);
  linalg::Vector theta(net.node_count(), m.geometry().ambient + 3.0);

  auto g_scaled = g.add_scaled(g, 0.3);  // 1.3·G, same pattern
  TransientSolver mutated(g, c, 1e-3);
  mutated.restamp(g_scaled);
  TransientSolver fresh(g_scaled, c, 1e-3);
  auto a = mutated.step(theta, rhs);
  auto b = fresh.step(theta, rhs);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);

  EXPECT_THROW(mutated.restamp(linalg::SparseMatrix::identity(3)),
               std::invalid_argument);
}

TEST(Transient, SharedSymbolicGivesIdenticalResults) {
  PackageModel m = PackageModel::build(small_options());
  m.set_tile_powers(test_powers());
  const auto& net = m.network();
  auto g = net.conductance_matrix();
  auto c = net.capacitance_vector();
  auto rhs = net.rhs(m.geometry().ambient);
  linalg::Vector theta(net.node_count(), m.geometry().ambient);

  TransientSolver first(g, c, 1e-3);
  ASSERT_NE(first.symbolic(), nullptr);
  TransientSolver sibling(g, c, 1e-3, first.symbolic());
  EXPECT_EQ(sibling.symbolic().get(), first.symbolic().get());
  auto a = first.step(theta, rhs);
  auto b = sibling.step(theta, rhs);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Transient, InvalidInputsThrow) {
  PackageModel m = PackageModel::build(small_options());
  auto g = m.network().conductance_matrix();
  auto c = m.network().capacitance_vector();
  EXPECT_THROW(TransientSolver(g, c, 0.0), std::invalid_argument);
  EXPECT_THROW(TransientSolver(g, linalg::Vector(3, 1.0), 1e-3), std::invalid_argument);
  linalg::Vector bad_c = c;
  bad_c[0] = 0.0;
  EXPECT_THROW(TransientSolver(g, bad_c, 1e-3), std::invalid_argument);
}

TEST(Validation, CoarseModelTracksReference) {
  // The compact-vs-fine-grid agreement experiment (Section VI): on a small
  // package the coarse tile temperatures must stay within ~1.5 °C of a 3x
  // refined discretization.
  auto o = small_options();
  ReferenceResolution res;
  res.lateral_refine = 3;
  res.silicon_slabs = 3;
  res.spreader_slabs = 2;
  auto report = validate_against_reference(o, test_powers(), res);
  EXPECT_EQ(report.coarse.size(), 16u);
  EXPECT_GT(report.reference_nodes, report.coarse_nodes);
  // This synthetic 0.6 W point load on a 0.25 mm² tile is harsher than the
  // paper's workloads; the Alpha-condition <1.5 °C claim is exercised by
  // bench_validation. Here we bound the discretization error of the scheme.
  EXPECT_LT(report.max_abs_diff, 2.5);
  EXPECT_LT(report.mean_abs_diff, 1.0);
  EXPECT_LE(report.mean_abs_diff, report.max_abs_diff);
}

TEST(Validation, RefinementConvergence) {
  // 2x and 4x refinements should agree with each other better than 1x vs 4x:
  // plain grid-convergence sanity.
  auto o = small_options();
  linalg::Vector p = test_powers();
  ReferenceResolution r2{2, 2, 1, 2};
  ReferenceResolution r4{4, 3, 1, 3};
  auto rep2 = validate_against_reference(o, p, r2);
  auto rep4 = validate_against_reference(o, p, r4);
  // Coarse model identical in both runs; finer reference may move a little.
  EXPECT_TRUE(approx_equal(rep2.coarse, rep4.coarse, 1e-9));
  double ref_gap = 0.0;
  for (std::size_t i = 0; i < rep2.reference.size(); ++i) {
    ref_gap = std::max(ref_gap, std::abs(rep2.reference[i] - rep4.reference[i]));
  }
  EXPECT_LT(ref_gap, rep4.max_abs_diff + 0.5);
}

}  // namespace
}  // namespace tfc::thermal
