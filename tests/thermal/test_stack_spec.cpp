/// StackSpec structural validation, virtual-grid semantics, and the golden
/// generic-vs-legacy builder identity on the paper's default package.
#include "thermal/stack_spec.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "thermal/material.h"
#include "thermal/package_model.h"

namespace tfc::thermal {
namespace {

LayerSpec die_layer(const std::string& name, double thickness, double power_w) {
  LayerSpec l;
  l.kind = LayerSpec::Kind::kDie;
  l.name = name;
  l.material = silicon();
  l.thickness = thickness;
  l.power_w = power_w;
  return l;
}

LayerSpec interface_layer(const std::string& name, bool tec_capable) {
  LayerSpec l;
  l.kind = LayerSpec::Kind::kInterface;
  l.name = name;
  l.material = thermal_interface();
  l.thickness = 50e-6;
  l.tec_capable = tec_capable;
  return l;
}

ChipSpec chip_6mm(const std::string& name, double x) {
  ChipSpec c;
  c.name = name;
  c.width = 6e-3;
  c.height = 6e-3;
  c.x = x;
  c.tile_rows = 4;
  c.tile_cols = 4;
  c.layers = {die_layer("die", 0.3e-3, 10.0), interface_layer("tim", true)};
  return c;
}

StackSpec small_spec() {
  StackSpec s;
  s.name = "small";
  s.chips = {chip_6mm("chip0", 0.0)};
  return s;
}

/// One chip, two stacked dies, top interface restricted to two sites.
StackSpec stacked_spec() {
  StackSpec s;
  s.name = "stacked";
  ChipSpec c = chip_6mm("cpu", 0.0);
  LayerSpec top = interface_layer("tim_top", true);
  top.tec_sites = {Tile{1, 1}, Tile{2, 2}};
  c.layers = {die_layer("core", 0.3e-3, 12.0), interface_layer("bond", true),
              die_layer("cache", 0.2e-3, 4.0), top};
  s.chips = {c};
  return s;
}

// --- validation edge cases ---------------------------------------------------

TEST(StackSpecValidate, SmallSpecIsValid) { EXPECT_NO_THROW(small_spec().validate()); }

TEST(StackSpecValidate, NoChipsThrows) {
  StackSpec s;
  s.chips.clear();
  EXPECT_THROW(
      try { s.validate(); } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("at least one chip"), std::string::npos);
        throw;
      },
      std::invalid_argument);
}

TEST(StackSpecValidate, ZeroThicknessThrows) {
  StackSpec s = small_spec();
  s.chips[0].layers[0].thickness = 0.0;
  EXPECT_THROW(
      try { s.validate(); } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("thickness must be > 0"), std::string::npos);
        throw;
      },
      std::invalid_argument);
}

TEST(StackSpecValidate, OverlappingFootprintsThrow) {
  StackSpec s;
  // Both chips centered: 6 mm footprints overlap on the shared spreader.
  s.chips = {chip_6mm("a", 0.0), chip_6mm("b", 1e-3)};
  EXPECT_THROW(
      try { s.validate(); } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("footprints overlap"), std::string::npos);
        throw;
      },
      std::invalid_argument);
}

TEST(StackSpecValidate, TecSiteOutOfRangeThrows) {
  StackSpec s = small_spec();
  s.chips[0].layers[1].tec_sites = {Tile{4, 0}};  // grid is 4x4, rows 0..3
  EXPECT_THROW(
      try { s.validate(); } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("TEC site"), std::string::npos);
        throw;
      },
      std::invalid_argument);
}

TEST(StackSpecValidate, TecSitesOnNonCapableInterfaceThrow) {
  StackSpec s = small_spec();
  s.chips[0].layers[1].tec_capable = false;
  s.chips[0].layers[1].tec_sites = {Tile{0, 0}};
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(StackSpecValidate, BadLayerAlternationThrows) {
  StackSpec s = small_spec();
  s.chips[0].layers = {die_layer("die", 0.3e-3, 10.0)};  // no closing interface
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(StackSpecValidate, MismatchedTileColsThrow) {
  StackSpec s;
  ChipSpec b = chip_6mm("b", 8e-3);
  b.tile_cols = 6;
  b.width = 6e-3;
  s.chips = {chip_6mm("a", -8e-3), b};
  EXPECT_THROW(
      try { s.validate(); } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("tile_cols"), std::string::npos);
        throw;
      },
      std::invalid_argument);
}

TEST(StackSpecValidate, ChipOffSpreaderThrows) {
  StackSpec s = small_spec();
  s.chips[0].x = 0.02;  // 6 mm die centered 20 mm out on a 30 mm spreader
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

// --- paper equivalence -------------------------------------------------------

TEST(StackSpecPaper, SingleDieRoundTripsGeometry) {
  PackageGeometry g;
  StackSpec s = StackSpec::single_die(g);
  EXPECT_TRUE(s.paper_equivalent());
  PackageGeometry back = s.to_geometry();
  EXPECT_EQ(back.tile_rows, g.tile_rows);
  EXPECT_EQ(back.tile_cols, g.tile_cols);
  EXPECT_EQ(back.die_width, g.die_width);
  EXPECT_EQ(back.die_thickness, g.die_thickness);
  EXPECT_EQ(back.convection_resistance, g.convection_resistance);
  EXPECT_EQ(back.ambient, g.ambient);
}

TEST(StackSpecPaper, StackedSpecIsNotPaperEquivalent) {
  StackSpec s = stacked_spec();
  EXPECT_FALSE(s.paper_equivalent());
  EXPECT_THROW(s.to_geometry(), std::logic_error);
}

// --- virtual grid ------------------------------------------------------------

TEST(StackSpecGrid, StackedDiesConcatenateRows) {
  StackSpec s = stacked_spec();
  EXPECT_EQ(s.dies().size(), 2u);
  EXPECT_EQ(s.total_tile_rows(), 8u);
  EXPECT_EQ(s.tile_cols(), 4u);
  EXPECT_EQ(s.dies()[0].row_offset, 0u);
  EXPECT_EQ(s.dies()[1].row_offset, 4u);
}

TEST(StackSpecGrid, TecAllowedTilesHonorSiteMasks) {
  StackSpec s = stacked_spec();
  TileMask allowed = s.tec_allowed_tiles();
  // Bottom die: unrestricted capable interface = all 16 tiles; top die:
  // explicit two sites at virtual rows 4+1 and 4+2.
  EXPECT_EQ(allowed.count(), 18u);
  EXPECT_TRUE(allowed.test(0, 0));
  EXPECT_TRUE(allowed.test(5, 1));
  EXPECT_TRUE(allowed.test(6, 2));
  EXPECT_FALSE(allowed.test(4, 0));
}

TEST(StackSpecGrid, TilePowersSpreadUniformly) {
  StackSpec s = stacked_spec();
  linalg::Vector p = s.tile_powers();
  ASSERT_EQ(p.size(), 32u);
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) total += p[i];
  EXPECT_NEAR(total, 16.0, 1e-12);
  EXPECT_NEAR(p[0], 12.0 / 16.0, 1e-12);   // core die band
  EXPECT_NEAR(p[16], 4.0 / 16.0, 1e-12);   // cache die band
}

TEST(StackSpecGrid, CombinedFloorplanPrefixesUnits) {
  StackSpec s = stacked_spec();
  floorplan::Floorplan plan = s.combined_floorplan();
  EXPECT_EQ(plan.tile_rows(), 8u);
  EXPECT_EQ(plan.tile_cols(), 4u);
  ASSERT_EQ(plan.units().size(), 2u);
  EXPECT_NE(plan.units()[0].name.find("cpu."), std::string::npos);
}

// --- golden: generic builder ≡ legacy builder on the default package --------

TEST(StackSpecGolden, GenericBuilderMatchesLegacyBitwise) {
  PackageGeometry g;
  StackSpec spec = StackSpec::single_die(g);

  TileMask deployment(g.tile_rows, g.tile_cols);
  deployment.set(3, 4);
  deployment.set(7, 7);
  deployment.set(0, 11);

  TecThermalLink link{0.5, 0.25, 0.5};

  PackageModelOptions legacy_opts;
  legacy_opts.geometry = g;
  legacy_opts.tec_tiles = deployment;
  legacy_opts.tec_link = link;
  PackageModel legacy = PackageModel::build(legacy_opts);

  PackageModel generic = PackageModel::build_from_spec(spec, deployment, link, 1,
                                                       /*force_generic=*/true);
  ASSERT_NE(generic.spec(), nullptr);

  ASSERT_EQ(generic.node_count(), legacy.node_count());
  const linalg::SparseMatrix gl = legacy.network().conductance_matrix();
  const linalg::SparseMatrix gg = generic.network().conductance_matrix();
  ASSERT_EQ(gg.nnz(), gl.nnz());
  EXPECT_EQ(gg.values(), gl.values());

  for (std::size_t n = 0; n < legacy.node_count(); ++n) {
    EXPECT_EQ(generic.network().ambient_conductance(n),
              legacy.network().ambient_conductance(n))
        << "node " << n;
  }
  const linalg::Vector cl = legacy.network().capacitance_vector();
  const linalg::Vector cg = generic.network().capacitance_vector();
  ASSERT_EQ(cg.size(), cl.size());
  for (std::size_t n = 0; n < cl.size(); ++n) {
    EXPECT_EQ(cg[n], cl[n]) << "node " << n;
  }

  // TEC node sets line up too (same numbering).
  EXPECT_EQ(generic.cold_nodes(), legacy.cold_nodes());
  EXPECT_EQ(generic.hot_nodes(), legacy.hot_nodes());
}

}  // namespace
}  // namespace tfc::thermal
