#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/properties.h"
#include "thermal/package_model.h"
#include "thermal/steady_state.h"

namespace tfc::thermal {
namespace {

PackageModelOptions base_options(bool secondary) {
  PackageModelOptions o;
  o.geometry.tile_rows = 4;
  o.geometry.tile_cols = 4;
  o.geometry.die_width = 2e-3;
  o.geometry.die_height = 2e-3;
  o.geometry.model_secondary_path = secondary;
  return o;
}

linalg::Vector powers() {
  linalg::Vector p(16, 0.15);
  p[5] = 0.6;
  return p;
}

TEST(SecondaryPath, AddsTwoNodes) {
  auto off = PackageModel::build(base_options(false));
  auto on = PackageModel::build(base_options(true));
  EXPECT_EQ(on.node_count(), off.node_count() + 2u);
}

TEST(SecondaryPath, MatrixStaysIrreduciblePdStieltjes) {
  auto m = PackageModel::build(base_options(true));
  auto g = m.network().conductance_matrix();
  EXPECT_TRUE(linalg::is_stieltjes(g));
  EXPECT_TRUE(linalg::is_irreducible(g));
  EXPECT_TRUE(linalg::is_positive_definite(g.to_dense()));
}

TEST(SecondaryPath, CoolsTheDie) {
  auto off = PackageModel::build(base_options(false));
  auto on = PackageModel::build(base_options(true));
  off.set_tile_powers(powers());
  on.set_tile_powers(powers());
  const double peak_off = off.peak_tile_temperature(solve_steady_state(off));
  const double peak_on = on.peak_tile_temperature(solve_steady_state(on));
  // A parallel escape path can only lower temperatures; with ~40 K/W total
  // against the ~1 K/W primary path the effect is small but strictly
  // positive.
  EXPECT_LT(peak_on, peak_off);
  EXPECT_GT(peak_on, peak_off - 5.0);
}

TEST(SecondaryPath, EnergySplitsAcrossBothPaths) {
  auto m = PackageModel::build(base_options(true));
  m.set_tile_powers(powers());
  auto theta = solve_steady_state(m);
  const auto& net = m.network();
  double q_total = 0.0;
  double q_board = 0.0;
  for (std::size_t k = 0; k < net.node_count(); ++k) {
    const double g = net.ambient_conductance(k);
    if (g <= 0.0) continue;
    const double q = g * (theta[k] - m.geometry().ambient);
    q_total += q;
    if (net.node(k).kind == NodeKind::kOther) q_board += q;
  }
  EXPECT_NEAR(q_total, net.total_power(), 1e-9 * q_total);
  EXPECT_GT(q_board, 0.0);
  EXPECT_LT(q_board, 0.25 * q_total);  // secondary path is the minor share
}

TEST(SecondaryPath, ValidationOfResistances) {
  auto o = base_options(true);
  o.geometry.c4_resistance = 0.0;
  EXPECT_THROW(PackageModel::build(o), std::invalid_argument);
  o = base_options(true);
  o.geometry.board_convection_resistance = -1.0;
  EXPECT_THROW(PackageModel::build(o), std::invalid_argument);
  // Disabled: the same non-physical values are ignored.
  o = base_options(false);
  o.geometry.c4_resistance = 0.0;
  EXPECT_NO_THROW(PackageModel::build(o));
}

}  // namespace
}  // namespace tfc::thermal
