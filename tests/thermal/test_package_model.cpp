#include "thermal/package_model.h"

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/properties.h"
#include "thermal/steady_state.h"

namespace tfc::thermal {
namespace {

PackageModelOptions small_options() {
  PackageModelOptions o;
  o.geometry.tile_rows = 4;
  o.geometry.tile_cols = 4;
  o.geometry.die_width = 2e-3;
  o.geometry.die_height = 2e-3;
  return o;
}

TecThermalLink test_link() { return {0.02, 0.01, 0.05}; }

TEST(PackageModel, NodeCountDefault) {
  PackageModel m = PackageModel::build(PackageModelOptions{});
  // 144 silicon + 144 TIM + 144+8 spreader + 144+8+8 sink = 600.
  EXPECT_EQ(m.node_count(), 600u);
}

TEST(PackageModel, MatrixIsIrreduciblePdStieltjes) {
  // Lemma 1 on a real package network.
  PackageModel m = PackageModel::build(small_options());
  auto g = m.network().conductance_matrix();
  EXPECT_TRUE(g.is_symmetric(1e-15));
  EXPECT_TRUE(linalg::is_stieltjes(g));
  EXPECT_TRUE(linalg::is_irreducible(g));
  EXPECT_TRUE(linalg::is_irreducibly_diagonally_dominant(g));
  EXPECT_TRUE(linalg::is_positive_definite(g.to_dense()));
}

TEST(PackageModel, EnergyConservation) {
  PackageModel m = PackageModel::build(small_options());
  linalg::Vector p(16);
  for (std::size_t i = 0; i < 16; ++i) p[i] = 0.1 + 0.01 * double(i);
  m.set_tile_powers(p);
  auto theta = solve_steady_state(m);
  double q_out = 0.0;
  for (std::size_t i = 0; i < m.node_count(); ++i) {
    const double g = m.network().ambient_conductance(i);
    if (g > 0.0) q_out += g * (theta[i] - m.geometry().ambient);
  }
  EXPECT_NEAR(q_out, m.network().total_power(), 1e-9 * m.network().total_power());
}

TEST(PackageModel, ZeroPowerGivesAmbientEverywhere) {
  PackageModel m = PackageModel::build(small_options());
  auto theta = solve_steady_state(m);
  for (std::size_t i = 0; i < theta.size(); ++i) {
    EXPECT_NEAR(theta[i], m.geometry().ambient, 1e-9);
  }
}

TEST(PackageModel, AllTemperaturesAboveAmbientUnderLoad) {
  PackageModel m = PackageModel::build(small_options());
  linalg::Vector p(16, 0.2);
  m.set_tile_powers(p);
  auto theta = solve_steady_state(m);
  for (std::size_t i = 0; i < theta.size(); ++i) {
    EXPECT_GT(theta[i], m.geometry().ambient);
  }
}

TEST(PackageModel, SiliconHotterThanSink) {
  PackageModel m = PackageModel::build(small_options());
  linalg::Vector p(16, 0.3);
  m.set_tile_powers(p);
  auto theta = solve_steady_state(m);
  double max_sink = 0.0;
  double min_sil = 1e9;
  for (std::size_t i = 0; i < m.node_count(); ++i) {
    const auto& info = m.network().node(i);
    if (info.kind == NodeKind::kSilicon) min_sil = std::min(min_sil, theta[i]);
    if (info.kind == NodeKind::kSinkCenter) max_sink = std::max(max_sink, theta[i]);
  }
  EXPECT_GT(min_sil, max_sink);
}

TEST(PackageModel, HotTileIsLocalPeak) {
  PackageModel m = PackageModel::build(small_options());
  linalg::Vector p(16, 0.05);
  p[1 * 4 + 2] = 0.8;
  m.set_tile_powers(p);
  auto tt = m.tile_temperatures(solve_steady_state(m));
  EXPECT_EQ(linalg::argmax(tt), std::size_t{1 * 4 + 2});
}

TEST(PackageModel, MorePowerMeansHotterEverywhere) {
  // Monotonicity of the M-matrix inverse: raising one tile's power cannot
  // cool any node.
  PackageModel m = PackageModel::build(small_options());
  linalg::Vector p(16, 0.1);
  m.set_tile_powers(p);
  auto t1 = solve_steady_state(m);
  p[5] += 0.5;
  m.set_tile_powers(p);
  auto t2 = solve_steady_state(m);
  for (std::size_t i = 0; i < t1.size(); ++i) EXPECT_GE(t2[i] + 1e-12, t1[i]);
}

TEST(PackageModel, TilePowerValidation) {
  PackageModel m = PackageModel::build(small_options());
  EXPECT_THROW(m.set_tile_powers(linalg::Vector(5)), std::invalid_argument);
  linalg::Vector neg(16);
  neg[0] = -1.0;
  EXPECT_THROW(m.set_tile_powers(neg), std::invalid_argument);
}

TEST(PackageModel, BadOptionsThrow) {
  auto o = small_options();
  o.lateral_refine = 0;
  EXPECT_THROW(PackageModel::build(o), std::invalid_argument);
  o = small_options();
  o.geometry.spreader_side = 1e-3;  // smaller than die
  EXPECT_THROW(PackageModel::build(o), std::invalid_argument);
  o = small_options();
  o.tec_tiles = TileMask(3, 3);  // shape mismatch
  o.tec_tiles.set(0, 0);
  EXPECT_THROW(PackageModel::build(o), std::invalid_argument);
  o = small_options();
  o.tec_tiles = TileMask(4, 4);
  o.tec_tiles.set(0, 0);
  o.tec_link = {};  // invalid link
  EXPECT_THROW(PackageModel::build(o), std::invalid_argument);
}

TEST(PackageModel, TecNodesCreatedAndTimRemoved) {
  auto o = small_options();
  o.tec_tiles = TileMask(4, 4);
  o.tec_tiles.set(1, 1);
  o.tec_tiles.set(2, 3);
  o.tec_link = test_link();
  PackageModel m = PackageModel::build(o);

  EXPECT_TRUE(m.has_tec({1, 1}));
  EXPECT_TRUE(m.has_tec({2, 3}));
  EXPECT_FALSE(m.has_tec({0, 0}));
  EXPECT_EQ(m.tec_tiles().size(), 2u);
  EXPECT_EQ(m.hot_nodes().size(), 2u);
  EXPECT_EQ(m.cold_nodes().size(), 2u);
  EXPECT_THROW(m.tec_cold_node({0, 0}), std::invalid_argument);

  // Node budget: base 4x4 model has 16*2 + (16+8) + (16+8+8) = 88 nodes; two
  // TIM nodes are replaced by two (hot, cold) pairs: 88 - 2 + 4 = 90.
  PackageModel base = PackageModel::build(small_options());
  EXPECT_EQ(m.node_count(), base.node_count() + 2u);

  // Network still Lemma-1 conformant.
  auto g = m.network().conductance_matrix();
  EXPECT_TRUE(linalg::is_stieltjes(g));
  EXPECT_TRUE(linalg::is_irreducible(g));
  EXPECT_TRUE(linalg::is_positive_definite(g.to_dense()));
}

TEST(PackageModel, TecAtZeroCurrentActsAsPassivePath) {
  // With no Peltier/Joule stamping the TEC is just a conductance chain; the
  // package must still solve and stay warmer than ambient.
  auto o = small_options();
  o.tec_tiles = TileMask(4, 4);
  o.tec_tiles.set(2, 2);
  o.tec_link = test_link();
  PackageModel m = PackageModel::build(o);
  linalg::Vector p(16, 0.2);
  m.set_tile_powers(p);
  auto theta = solve_steady_state(m);
  const double cold = theta[m.tec_cold_node({2, 2})];
  const double hot = theta[m.tec_hot_node({2, 2})];
  EXPECT_GT(cold, m.geometry().ambient);
  // Passive heat flows silicon → cold → hot → spreader, so cold ≥ hot.
  EXPECT_GE(cold, hot);
}

TEST(PackageModel, RefinedModelsHaveMoreNodes) {
  auto o = small_options();
  PackageModel coarse = PackageModel::build(o);
  o.lateral_refine = 2;
  o.silicon_slabs = 2;
  PackageModel fine = PackageModel::build(o);
  EXPECT_GT(fine.node_count(), 4 * coarse.node_count() / 2);
}

TEST(PackageModel, RefinedTilePowerSplitsEvenly) {
  auto o = small_options();
  o.lateral_refine = 2;
  PackageModel m = PackageModel::build(o);
  linalg::Vector p(16);
  p[0] = 1.0;
  m.set_tile_powers(p);
  EXPECT_NEAR(m.network().total_power(), 1.0, 1e-12);
  auto nodes = m.silicon_tile_nodes({0, 0});
  EXPECT_EQ(nodes.size(), 4u);
  for (auto n : nodes) EXPECT_DOUBLE_EQ(m.network().power_vector()[n], 0.25);
}

TEST(PackageModel, NoSpreaderOverhangDegenerateGeometry) {
  auto o = small_options();
  o.geometry.spreader_side = o.geometry.die_width;  // no overhang
  o.geometry.sink_side = 10e-3;
  PackageModel m = PackageModel::build(o);
  linalg::Vector p(16, 0.1);
  m.set_tile_powers(p);
  auto g = m.network().conductance_matrix();
  EXPECT_TRUE(linalg::is_irreducible(g));
  auto theta = solve_steady_state(m);
  EXPECT_GT(m.peak_tile_temperature(theta), m.geometry().ambient);
}

TEST(PackageModel, NoSinkOverhangDegenerateGeometry) {
  auto o = small_options();
  o.geometry.sink_side = o.geometry.spreader_side;
  PackageModel m = PackageModel::build(o);
  linalg::Vector p(16, 0.1);
  m.set_tile_powers(p);
  auto theta = solve_steady_state(m);
  EXPECT_GT(m.peak_tile_temperature(theta), m.geometry().ambient);
}

TEST(PackageModel, FullyDegenerateStack) {
  auto o = small_options();
  o.geometry.spreader_side = o.geometry.die_width;
  o.geometry.sink_side = o.geometry.die_width;
  PackageModel m = PackageModel::build(o);
  // 16 sil + 16 tim + 16 spreader + 16 sink, no periphery.
  EXPECT_EQ(m.node_count(), 64u);
  linalg::Vector p(16, 0.1);
  m.set_tile_powers(p);
  auto theta = solve_steady_state(m);
  double q_out = 0.0;
  for (std::size_t i = 0; i < m.node_count(); ++i) {
    const double g = m.network().ambient_conductance(i);
    if (g > 0.0) q_out += g * (theta[i] - m.geometry().ambient);
  }
  EXPECT_NEAR(q_out, 1.6, 1e-9);
}

TEST(PackageModel, ConvectionLegsSumToTotalConductance) {
  PackageModel m = PackageModel::build(small_options());
  double g_sum = 0.0;
  for (std::size_t i = 0; i < m.node_count(); ++i) {
    g_sum += m.network().ambient_conductance(i);
  }
  EXPECT_NEAR(g_sum, 1.0 / m.geometry().convection_resistance, 1e-9 * g_sum);
}

TEST(PackageModel, SubtileQueriesValidated) {
  auto o = small_options();
  o.lateral_refine = 2;
  PackageModel m = PackageModel::build(o);
  EXPECT_THROW(m.silicon_node({0, 0}, 2, 0), std::out_of_range);
  EXPECT_THROW(m.silicon_node({9, 0}, 0, 0), std::out_of_range);
}

}  // namespace
}  // namespace tfc::thermal
