#include <gtest/gtest.h>

#include "core/current_optimizer.h"
#include "core/multipin.h"

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 6;
  g.die_width = g.die_height = 3e-3;
  return g;
}

tec::ElectroThermalSystem deployed_system() {
  TileMask dep(6, 6);
  dep.set(2, 2);
  dep.set(2, 3);
  dep.set(3, 2);
  dep.set(4, 4);  // a device away from the main hot spot
  linalg::Vector p(36, 0.10);
  p[2 * 6 + 2] = 0.65;
  p[2 * 6 + 3] = 0.65;
  p[3 * 6 + 2] = 0.55;
  p[4 * 6 + 4] = 0.35;
  return tec::ElectroThermalSystem::assemble(small_geom(), dep, p,
                                             tec::TecDeviceParams::chowdhury_superlattice());
}

TEST(GroupedPins, SingleGroupMatchesSharedOptimum) {
  auto sys = deployed_system();
  auto shared = optimize_current(sys);
  MultiPinOptions o;
  o.current_cap = 20.0;
  auto grouped = optimize_grouped_pins(sys, {0, 0, 0, 0}, shared.current, o);
  EXPECT_NEAR(grouped.peak_tile_temperature, shared.peak_tile_temperature, 0.02);
  ASSERT_EQ(grouped.group_currents.size(), 1u);
  EXPECT_NEAR(grouped.group_currents[0], shared.current, 0.2);
}

TEST(GroupedPins, MoreGroupsNeverWorse) {
  auto sys = deployed_system();
  auto shared = optimize_current(sys);
  auto g1 = optimize_grouped_pins(sys, {0, 0, 0, 0}, shared.current);
  auto g2 = optimize_grouped_pins(sys, hotness_groups(sys, 2), shared.current);
  auto mp = optimize_multi_pin(sys, shared.current);
  EXPECT_LE(g2.peak_tile_temperature, g1.peak_tile_temperature + 1e-6);
  EXPECT_LE(mp.peak_tile_temperature, g2.peak_tile_temperature + 1e-6);
}

TEST(GroupedPins, AssignmentValidation) {
  auto sys = deployed_system();
  EXPECT_THROW(optimize_grouped_pins(sys, {0, 0, 0}, 1.0), std::invalid_argument);
  EXPECT_THROW(optimize_grouped_pins(sys, {0, 0, 0, 2}, 1.0), std::invalid_argument);
  EXPECT_THROW(optimize_grouped_pins(sys, {0, 1, 0, 1}, -1.0), std::invalid_argument);
}

TEST(GroupedPins, HotnessGroupsOrderedByTemperature) {
  auto sys = deployed_system();
  auto groups = hotness_groups(sys, 2);
  ASSERT_EQ(groups.size(), 4u);
  // Devices 0-2 sit on the hot cluster; device 3 on the cooler spot must be
  // in the last tier.
  EXPECT_EQ(groups[3], 1u);
  // Exactly two tiers used.
  EXPECT_EQ(*std::max_element(groups.begin(), groups.end()), 1u);
  EXPECT_THROW(hotness_groups(sys, 0), std::invalid_argument);
  EXPECT_THROW(hotness_groups(sys, 9), std::invalid_argument);
}

TEST(GroupedPins, HotTierDrivenHarderThanColdTier) {
  auto sys = deployed_system();
  auto shared = optimize_current(sys);
  auto groups = hotness_groups(sys, 2);
  auto res = optimize_grouped_pins(sys, groups, shared.current);
  ASSERT_EQ(res.group_currents.size(), 2u);
  // The tier holding the hottest devices wants at least as much current.
  EXPECT_GE(res.group_currents[0], res.group_currents[1] - 0.5);
}

}  // namespace
}  // namespace tfc::core
