#include "core/dtm.h"

#include <gtest/gtest.h>

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 6;
  g.die_width = g.die_height = 3e-3;
  return g;
}

floorplan::Floorplan small_chip() {
  std::vector<floorplan::FunctionalUnit> units = {
      {"HOT", {{2, 2, 2, 2}}, 2.4},
      {"BG1", {{0, 0, 2, 6}}, 1.2},
      {"BG2", {{2, 0, 4, 2}}, 0.8},
      {"BG3", {{2, 4, 4, 2}}, 0.8},
      {"BG4", {{4, 2, 2, 2}}, 0.4},
  };
  floorplan::Floorplan plan(6, 6, std::move(units));
  plan.validate();
  return plan;
}

tec::TecDeviceParams dev() { return tec::TecDeviceParams::chowdhury_superlattice(); }

TEST(Dtm, NoThrottlingWhenAlreadyCool) {
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(150.0);
  auto r = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);
  EXPECT_TRUE(r.met_limit);
  EXPECT_DOUBLE_EQ(r.performance, 1.0);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Dtm, ThrottlesHotUnitToMeetLimit) {
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(70.0);
  auto r = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);
  EXPECT_TRUE(r.met_limit);
  EXPECT_LT(r.performance, 1.0);
  EXPECT_LE(r.peak, o.theta_limit);
  // The hot unit (index 0) took the hit; background units untouched.
  EXPECT_LT(r.unit_scales[0], 1.0);
  EXPECT_DOUBLE_EQ(r.unit_scales[1], 1.0);
}

TEST(Dtm, TecDeploymentPreservesPerformance) {
  // The paper's introduction: active cooling and DTM "operate
  // synergistically" — TECs on the hot spot reduce required throttling.
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(70.0);
  auto passive = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);

  TileMask deployment(6, 6);
  for (std::size_t r = 2; r <= 3; ++r) {
    for (std::size_t c = 2; c <= 3; ++c) deployment.set(r, c);
  }
  auto active = simulate_dtm(small_chip(), small_geom(), dev(), deployment, 5.0, o);

  ASSERT_TRUE(passive.met_limit && active.met_limit);
  EXPECT_GT(active.performance, passive.performance);
}

TEST(Dtm, ImpossibleLimitStopsAtFloor) {
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(46.0);  // 1 K over ambient: hopeless
  o.max_rounds = 500;
  auto r = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);
  EXPECT_FALSE(r.met_limit);
  // At least the hottest unit hit the floor.
  double min_scale = 1.0;
  for (double s : r.unit_scales) min_scale = std::min(min_scale, s);
  EXPECT_NEAR(min_scale, o.min_scale, 1e-9);
}

TEST(Dtm, OptionValidation) {
  DtmOptions o;
  o.scale_step = 0.0;
  EXPECT_THROW(simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o),
               std::invalid_argument);
  o = {};
  o.min_scale = 1.0;
  EXPECT_THROW(simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o),
               std::invalid_argument);
  // Grid mismatch.
  thermal::PackageGeometry wrong = small_geom();
  wrong.tile_rows = 4;
  EXPECT_THROW(simulate_dtm(small_chip(), wrong, dev(), TileMask(), 0.0, DtmOptions{}),
               std::invalid_argument);
}

TEST(Dtm, PerformanceIsPowerWeighted) {
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(70.0);
  auto r = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);
  // Recompute the metric by hand.
  auto chip = small_chip();
  double retained = 0.0, total = 0.0;
  for (std::size_t u = 0; u < chip.units().size(); ++u) {
    retained += r.unit_scales[u] * chip.units()[u].peak_power;
    total += chip.units()[u].peak_power;
  }
  EXPECT_NEAR(r.performance, retained / total, 1e-12);
}

}  // namespace
}  // namespace tfc::core
