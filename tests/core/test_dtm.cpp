#include "core/dtm.h"

#include <gtest/gtest.h>

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 6;
  g.die_width = g.die_height = 3e-3;
  return g;
}

floorplan::Floorplan small_chip() {
  std::vector<floorplan::FunctionalUnit> units = {
      {"HOT", {{2, 2, 2, 2}}, 2.4},
      {"BG1", {{0, 0, 2, 6}}, 1.2},
      {"BG2", {{2, 0, 4, 2}}, 0.8},
      {"BG3", {{2, 4, 4, 2}}, 0.8},
      {"BG4", {{4, 2, 2, 2}}, 0.4},
  };
  floorplan::Floorplan plan(6, 6, std::move(units));
  plan.validate();
  return plan;
}

tec::TecDeviceParams dev() { return tec::TecDeviceParams::chowdhury_superlattice(); }

TEST(Dtm, NoThrottlingWhenAlreadyCool) {
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(150.0);
  auto r = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);
  EXPECT_TRUE(r.met_limit);
  EXPECT_DOUBLE_EQ(r.performance, 1.0);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Dtm, ThrottlesHotUnitToMeetLimit) {
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(70.0);
  auto r = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);
  EXPECT_TRUE(r.met_limit);
  EXPECT_LT(r.performance, 1.0);
  EXPECT_LE(r.peak, o.theta_limit);
  // The hot unit (index 0) took the hit; background units untouched.
  EXPECT_LT(r.unit_scales[0], 1.0);
  EXPECT_DOUBLE_EQ(r.unit_scales[1], 1.0);
}

TEST(Dtm, TecDeploymentPreservesPerformance) {
  // The paper's introduction: active cooling and DTM "operate
  // synergistically" — TECs on the hot spot reduce required throttling.
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(70.0);
  auto passive = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);

  TileMask deployment(6, 6);
  for (std::size_t r = 2; r <= 3; ++r) {
    for (std::size_t c = 2; c <= 3; ++c) deployment.set(r, c);
  }
  auto active = simulate_dtm(small_chip(), small_geom(), dev(), deployment, 5.0, o);

  ASSERT_TRUE(passive.met_limit && active.met_limit);
  EXPECT_GT(active.performance, passive.performance);
}

TEST(Dtm, ImpossibleLimitStopsAtFloor) {
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(46.0);  // 1 K over ambient: hopeless
  o.max_rounds = 500;
  auto r = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);
  EXPECT_FALSE(r.met_limit);
  // At least the hottest unit hit the floor.
  double min_scale = 1.0;
  for (double s : r.unit_scales) min_scale = std::min(min_scale, s);
  EXPECT_NEAR(min_scale, o.min_scale, 1e-9);
}

TEST(Dtm, OptionValidation) {
  DtmOptions o;
  o.scale_step = 0.0;
  EXPECT_THROW(simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o),
               std::invalid_argument);
  o = {};
  o.min_scale = 1.0;
  EXPECT_THROW(simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o),
               std::invalid_argument);
  // Grid mismatch.
  thermal::PackageGeometry wrong = small_geom();
  wrong.tile_rows = 4;
  EXPECT_THROW(simulate_dtm(small_chip(), wrong, dev(), TileMask(), 0.0, DtmOptions{}),
               std::invalid_argument);
}

// --- DtmController (the time-domain policy behind tfc::sim) ----------------

/// Tile temperature map with one hot tile inside the HOT unit (row 2, col 2).
linalg::Vector tiles_with_hot_spot(double background_k, double hot_k) {
  linalg::Vector t(36, background_k);
  t[2 * 6 + 2] = hot_k;
  return t;
}

TEST(DtmController, EscalatesCurrentBeforeThrottling) {
  DtmPolicyOptions o;
  o.theta_limit = thermal::to_kelvin(85.0);
  o.current_levels = {0.0, 1.0, 2.0};
  const auto chip = small_chip();
  DtmController ctl(chip, o);
  EXPECT_DOUBLE_EQ(ctl.current(), 0.0);

  const auto hot = tiles_with_hot_spot(330.0, 400.0);
  auto a1 = ctl.decide(hot);
  EXPECT_EQ(a1.kind, DtmActionKind::kCurrentUp);
  EXPECT_DOUBLE_EQ(a1.current_a, 1.0);
  auto a2 = ctl.decide(hot);
  EXPECT_EQ(a2.kind, DtmActionKind::kCurrentUp);
  EXPECT_DOUBLE_EQ(ctl.current(), 2.0);

  // Supply exhausted: the unit owning the hottest tile takes the hit.
  auto a3 = ctl.decide(hot);
  EXPECT_EQ(a3.kind, DtmActionKind::kThrottle);
  EXPECT_EQ(a3.unit, 0u);  // "HOT"
  EXPECT_DOUBLE_EQ(a3.scale, 1.0 - o.scale_step);
  EXPECT_LT(ctl.performance(), 1.0);
}

TEST(DtmController, ThrottlesFirstWhenCurrentEscalationDisabled) {
  DtmPolicyOptions o;
  o.current_levels = {0.0, 1.0};
  o.escalate_current_first = false;
  const auto chip = small_chip();
  DtmController ctl(chip, o);
  auto a = ctl.decide(tiles_with_hot_spot(330.0, 400.0));
  EXPECT_EQ(a.kind, DtmActionKind::kThrottle);
  EXPECT_DOUBLE_EQ(ctl.current(), 0.0);
}

TEST(DtmController, RecoveryBoostsThenStepsCurrentDown) {
  DtmPolicyOptions o;
  o.current_levels = {0.0, 1.0};
  const auto chip = small_chip();
  DtmController ctl(chip, o);
  const auto hot = tiles_with_hot_spot(330.0, 400.0);
  ASSERT_EQ(ctl.decide(hot).kind, DtmActionKind::kCurrentUp);
  ASSERT_EQ(ctl.decide(hot).kind, DtmActionKind::kThrottle);

  // Cool, with hysteresis headroom: restore the throttled unit first, then
  // wind the supply back down, then settle at kNone.
  const linalg::Vector cool(36, 300.0);
  auto b = ctl.decide(cool);
  EXPECT_EQ(b.kind, DtmActionKind::kBoost);
  EXPECT_EQ(b.unit, 0u);
  EXPECT_DOUBLE_EQ(b.scale, 1.0);
  auto down = ctl.decide(cool);
  EXPECT_EQ(down.kind, DtmActionKind::kCurrentDown);
  EXPECT_DOUBLE_EQ(ctl.current(), 0.0);
  EXPECT_EQ(ctl.decide(cool).kind, DtmActionKind::kNone);
}

TEST(DtmController, GuardBandSuppressesRecovery) {
  DtmPolicyOptions o;
  o.theta_limit = 360.0;
  o.guard_band = 5.0;
  const auto chip = small_chip();
  DtmController ctl(chip, o);
  ASSERT_EQ(ctl.decide(tiles_with_hot_spot(330.0, 400.0)).kind,
            DtmActionKind::kThrottle);
  // Inside the band (neither over the limit nor under limit − band): hold.
  EXPECT_EQ(ctl.decide(linalg::Vector(36, 357.0)).kind, DtmActionKind::kNone);
  // Below the band: recover.
  EXPECT_EQ(ctl.decide(linalg::Vector(36, 350.0)).kind, DtmActionKind::kBoost);
}

TEST(DtmController, ThrottleRespectsMinScale) {
  DtmPolicyOptions o;
  o.theta_limit = 300.0;
  o.scale_step = 0.5;
  o.min_scale = 0.4;
  const auto chip = small_chip();
  DtmController ctl(chip, o);
  const auto hot = tiles_with_hot_spot(330.0, 400.0);
  EXPECT_EQ(ctl.decide(hot).kind, DtmActionKind::kThrottle);  // HOT -> 0.5
  auto floored = ctl.decide(hot);                             // HOT -> 0.4 (clamped)
  EXPECT_EQ(floored.unit, 0u);
  EXPECT_DOUBLE_EQ(floored.scale, 0.4);
  // HOT is floored; the hottest unit with remaining headroom takes the hit.
  auto a = ctl.decide(hot);
  EXPECT_EQ(a.kind, DtmActionKind::kThrottle);
  EXPECT_NE(a.unit, 0u);
}

TEST(DtmController, InvalidPolicyAndInputsThrow) {
  DtmPolicyOptions bad;
  bad.scale_step = 0.0;
  EXPECT_THROW(DtmController(small_chip(), bad), std::invalid_argument);
  bad = {};
  bad.min_scale = 1.0;
  EXPECT_THROW(DtmController(small_chip(), bad), std::invalid_argument);
  bad = {};
  bad.current_levels = {1.0, 0.5};  // not ascending
  EXPECT_THROW(DtmController(small_chip(), bad), std::invalid_argument);
  bad = {};
  bad.guard_band = -1.0;
  EXPECT_THROW(DtmController(small_chip(), bad), std::invalid_argument);

  const auto chip = small_chip();
  DtmController ctl(chip);
  EXPECT_THROW(ctl.decide(linalg::Vector(7, 300.0)), std::invalid_argument);
}

TEST(DtmController, ActionNamesAreStable) {
  EXPECT_STREQ(dtm_action_name(DtmActionKind::kNone), "none");
  EXPECT_STREQ(dtm_action_name(DtmActionKind::kThrottle), "throttle");
  EXPECT_STREQ(dtm_action_name(DtmActionKind::kBoost), "boost");
  EXPECT_STREQ(dtm_action_name(DtmActionKind::kCurrentUp), "current_up");
  EXPECT_STREQ(dtm_action_name(DtmActionKind::kCurrentDown), "current_down");
}

TEST(Dtm, PerformanceIsPowerWeighted) {
  DtmOptions o;
  o.theta_limit = thermal::to_kelvin(70.0);
  auto r = simulate_dtm(small_chip(), small_geom(), dev(), TileMask(), 0.0, o);
  // Recompute the metric by hand.
  auto chip = small_chip();
  double retained = 0.0, total = 0.0;
  for (std::size_t u = 0; u < chip.units().size(); ++u) {
    retained += r.unit_scales[u] * chip.units()[u].peak_power;
    total += chip.units()[u].peak_power;
  }
  EXPECT_NEAR(r.performance, retained / total, 1e-12);
}

}  // namespace
}  // namespace tfc::core
