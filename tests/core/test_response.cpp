#include "core/response.h"

#include <gtest/gtest.h>

#include "tec/runaway.h"

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 4;
  g.die_width = g.die_height = 2e-3;
  return g;
}

tec::ElectroThermalSystem make_system() {
  TileMask dep(4, 4);
  dep.set(1, 1);
  dep.set(1, 2);
  linalg::Vector p(16, 0.08);
  p[5] = 0.5;
  return tec::ElectroThermalSystem::assemble(small_geom(), dep, p,
                                             tec::TecDeviceParams::chowdhury_superlattice());
}

TEST(Response, NegativeCurrentRejected) {
  auto sys = make_system();
  EXPECT_FALSE(ResponseEvaluator::at(sys, -0.5).has_value());
}

TEST(Response, FailsPastRunaway) {
  auto sys = make_system();
  auto lm = tec::runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  EXPECT_TRUE(ResponseEvaluator::at(sys, 0.9 * *lm).has_value());
  EXPECT_FALSE(ResponseEvaluator::at(sys, 1.1 * *lm).has_value());
}

TEST(Response, HColumnsMatchInverse) {
  auto sys = make_system();
  auto eval = ResponseEvaluator::at(sys, 2.0);
  ASSERT_TRUE(eval.has_value());
  const auto m = sys.system_matrix(2.0).to_dense();
  // M · h_col(l) = e_l.
  for (std::size_t l : {std::size_t{0}, std::size_t{7}}) {
    auto col = eval->h_column(l);
    auto r = m * col;
    for (std::size_t k = 0; k < r.size(); ++k) {
      EXPECT_NEAR(r[k], k == l ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Response, HSymmetric) {
  // h_kl = h_lk: reciprocity of the (symmetric) coupled system.
  auto sys = make_system();
  auto eval = ResponseEvaluator::at(sys, 3.0);
  ASSERT_TRUE(eval.has_value());
  auto c3 = eval->h_column(3);
  auto c9 = eval->h_column(9);
  EXPECT_NEAR(c3[9], c9[3], 1e-12);
}

TEST(Response, HNonnegativeBelowRunaway) {
  // Lemma 3 for the coupled matrix: every response entry is ≥ 0.
  auto sys = make_system();
  auto lm = tec::runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  auto eval = ResponseEvaluator::at(sys, 0.8 * *lm);
  ASSERT_TRUE(eval.has_value());
  for (std::size_t l = 0; l < sys.node_count(); l += 7) {
    auto col = eval->h_column(l);
    for (std::size_t k = 0; k < col.size(); ++k) EXPECT_GE(col[k], -1e-12);
  }
}

TEST(Response, Equation10Decomposition) {
  // θ_k(i) = ½·r·i²·η_k(i) + ζ_k(i) must reproduce the direct solve exactly.
  auto sys = make_system();
  for (double i : {0.0, 1.5, 4.0, 8.0}) {
    auto eval = ResponseEvaluator::at(sys, i);
    ASSERT_TRUE(eval.has_value());
    auto s = eval->sample();
    auto direct = sys.solve(i);
    ASSERT_TRUE(direct.has_value());
    const double r = sys.device().resistance;
    for (std::size_t k = 0; k < sys.node_count(); ++k) {
      const double reconstructed = 0.5 * r * i * i * s.eta[k] + s.zeta[k];
      EXPECT_NEAR(reconstructed, direct->theta[k], 1e-7);
    }
  }
}

TEST(Response, EtaPrimeMatchesFiniteDifference) {
  auto sys = make_system();
  const double i0 = 2.0, h = 1e-4;
  auto s0 = ResponseEvaluator::at(sys, i0)->sample();
  auto sp = ResponseEvaluator::at(sys, i0 + h)->sample();
  auto sm = ResponseEvaluator::at(sys, i0 - h)->sample();
  for (std::size_t k = 0; k < sys.node_count(); k += 5) {
    const double fd = (sp.eta[k] - sm.eta[k]) / (2.0 * h);
    EXPECT_NEAR(s0.eta_prime[k], fd, 1e-5 * (1.0 + std::abs(fd)));
  }
}

TEST(Response, ThetaDerivativeMatchesFiniteDifference) {
  auto sys = make_system();
  const double i0 = 3.0, h = 1e-4;
  auto d = ResponseEvaluator::at(sys, i0)->theta_derivative();
  auto tp = sys.solve(i0 + h)->theta;
  auto tm = sys.solve(i0 - h)->theta;
  for (std::size_t k = 0; k < sys.node_count(); k += 3) {
    const double fd = (tp[k] - tm[k]) / (2.0 * h);
    EXPECT_NEAR(d[k], fd, 1e-4 * (1.0 + std::abs(fd)));
  }
}

// Figure 6 properties of h_kl(i): nonnegative, increasing toward λ_m, and
// divergent as i → λ_m.
TEST(Response, Figure6HklShape) {
  auto sys = make_system();
  auto lm = tec::runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  const std::size_t k = sys.model().silicon_node({1, 1});
  const std::size_t l = sys.model().tec_hot_node({1, 1});
  double prev = -1.0;
  for (double frac : {0.0, 0.3, 0.6, 0.9, 0.99, 0.9999}) {
    auto eval = ResponseEvaluator::at(sys, frac * *lm);
    ASSERT_TRUE(eval.has_value());
    const double hkl = eval->h_column(l)[k];
    EXPECT_GE(hkl, 0.0);
    EXPECT_GT(hkl, prev);  // increasing along this sequence
    prev = hkl;
  }
  EXPECT_GT(prev, 1e3);  // diverging at 0.9999·λ_m (Theorem 2)
}

}  // namespace
}  // namespace tfc::core
