#include <gtest/gtest.h>

#include "core/conjecture.h"
#include "core/convexity.h"

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 4;
  g.die_width = g.die_height = 2e-3;
  return g;
}

tec::ElectroThermalSystem deployed_system() {
  TileMask dep(4, 4);
  dep.set(1, 1);
  dep.set(2, 2);
  linalg::Vector p(16, 0.08);
  p[5] = 0.5;
  return tec::ElectroThermalSystem::assemble(small_geom(), dep, p,
                                             tec::TecDeviceParams::chowdhury_superlattice());
}

TEST(Convexity, CertifiesRealDeployment) {
  auto cert = certify_convexity(deployed_system());
  EXPECT_TRUE(cert.certified);
  EXPECT_GE(cert.min_functional, 0.0);
  EXPECT_GT(cert.lambda_m, 0.0);
  EXPECT_GT(cert.solves, 0u);
}

TEST(Convexity, ThrowsWithoutTecs) {
  auto sys = tec::ElectroThermalSystem::assemble(small_geom(), TileMask(),
                                                 linalg::Vector(16, 0.1),
                                                 tec::TecDeviceParams::chowdhury_superlattice());
  EXPECT_THROW(certify_convexity(sys), std::invalid_argument);
}

TEST(Convexity, OptionsValidated) {
  auto sys = deployed_system();
  ConvexityOptions o;
  o.subintervals = 0;
  EXPECT_THROW(certify_convexity(sys, o), std::invalid_argument);
  o = {};
  o.samples_per_interval = 1;
  EXPECT_THROW(certify_convexity(sys, o), std::invalid_argument);
  o = {};
  o.lambda_fraction = 1.5;
  EXPECT_THROW(certify_convexity(sys, o), std::invalid_argument);
}

TEST(Convexity, FinerPartitionStillCertifies) {
  // Theorem 4 allows any partition; a finer one tightens the η′ lower bound.
  ConvexityOptions fine;
  fine.subintervals = 16;
  fine.samples_per_interval = 5;
  auto cert = certify_convexity(deployed_system(), fine);
  EXPECT_TRUE(cert.certified);
}

TEST(Convexity, CertificateBacksActualSecondDifferences) {
  // Cross-check the certificate against sampled curvature of tile temps.
  auto sys = deployed_system();
  auto cert = certify_convexity(sys);
  ASSERT_TRUE(cert.certified);
  const double hi = 0.95 * cert.lambda_m;
  const int n = 10;
  std::vector<linalg::Vector> tiles;
  for (int s = 0; s <= n; ++s) {
    auto op = sys.solve(hi * double(s) / double(n));
    ASSERT_TRUE(op.has_value());
    tiles.push_back(op->tile_temperatures);
  }
  for (int s = 1; s + 1 <= n; ++s) {
    for (std::size_t k = 0; k < 16; ++k) {
      EXPECT_GE(tiles[s - 1][k] + tiles[s + 1][k] - 2.0 * tiles[s][k], -1e-6);
    }
  }
}

TEST(Conjecture, CampaignFindsNoViolations) {
  ConjectureCampaignOptions o;
  o.sizes = {2, 3, 5, 8};
  o.matrices_per_size = 10;
  auto rep = run_conjecture_campaign(o);
  EXPECT_EQ(rep.matrices_checked, 80u);  // 2 families × 4 sizes × 10
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_GT(rep.pairs_checked_at_least, 0u);
}

TEST(Conjecture, DeterministicInSeed) {
  ConjectureCampaignOptions o;
  o.sizes = {4};
  o.matrices_per_size = 5;
  auto a = run_conjecture_campaign(o);
  auto b = run_conjecture_campaign(o);
  EXPECT_EQ(a.matrices_checked, b.matrices_checked);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(Conjecture, PairBudgetCapsWork) {
  ConjectureCampaignOptions o;
  o.sizes = {6};
  o.matrices_per_size = 3;
  o.pair_budget = 4;
  auto rep = run_conjecture_campaign(o);
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_EQ(rep.pairs_checked_at_least, 6u * 4u);
}

}  // namespace
}  // namespace tfc::core
