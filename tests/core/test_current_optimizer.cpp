#include "core/current_optimizer.h"

#include <gtest/gtest.h>

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 6;
  g.die_width = g.die_height = 3e-3;
  return g;
}

linalg::Vector hot_map() {
  linalg::Vector p(36, 0.10);
  p[2 * 6 + 2] = 0.65;
  p[2 * 6 + 3] = 0.65;
  p[3 * 6 + 2] = 0.55;
  return p;
}

tec::ElectroThermalSystem deployed_system() {
  TileMask dep(6, 6);
  dep.set(2, 2);
  dep.set(2, 3);
  dep.set(3, 2);
  return tec::ElectroThermalSystem::assemble(small_geom(), dep, hot_map(),
                                             tec::TecDeviceParams::chowdhury_superlattice());
}

TEST(CurrentOptimizer, ImprovesOverZeroCurrent) {
  auto sys = deployed_system();
  auto opt = optimize_current(sys);
  EXPECT_TRUE(opt.converged);
  const double peak0 = sys.solve(0.0)->peak_tile_temperature;
  EXPECT_LT(opt.peak_tile_temperature, peak0 - 1.0);  // > 1 K of cooling
  EXPECT_GT(opt.current, 0.0);
  ASSERT_TRUE(opt.lambda_m.has_value());
  EXPECT_LT(opt.current, *opt.lambda_m);
}

TEST(CurrentOptimizer, BrentMatchesGoldenWithFewerSolves) {
  auto sys = deployed_system();
  CurrentOptimizerOptions golden, brent;
  golden.method = CurrentMethod::kGoldenSection;
  brent.method = CurrentMethod::kBrent;
  golden.current_tol = brent.current_tol = 1e-5;
  auto a = optimize_current(sys, golden);
  auto b = optimize_current(sys, brent);
  EXPECT_TRUE(b.converged);
  EXPECT_NEAR(a.current, b.current, 1e-3);
  EXPECT_NEAR(a.peak_tile_temperature, b.peak_tile_temperature, 1e-4);
  EXPECT_LT(b.objective_evaluations, a.objective_evaluations);
}

TEST(CurrentOptimizer, GoldenSectionAndGradientDescentAgree) {
  auto sys = deployed_system();
  CurrentOptimizerOptions golden, grad;
  grad.method = CurrentMethod::kGradientDescent;
  auto a = optimize_current(sys, golden);
  auto b = optimize_current(sys, grad);
  EXPECT_NEAR(a.current, b.current, 0.05 * a.current + 0.02);
  EXPECT_NEAR(a.peak_tile_temperature, b.peak_tile_temperature, 0.02);
}

TEST(CurrentOptimizer, OptimumIsLocalMinimum) {
  auto sys = deployed_system();
  auto opt = optimize_current(sys);
  const double d = 0.25;
  const double left = sys.solve(std::max(0.0, opt.current - d))->peak_tile_temperature;
  const double right = sys.solve(opt.current + d)->peak_tile_temperature;
  EXPECT_LE(opt.peak_tile_temperature, left + 1e-6);
  EXPECT_LE(opt.peak_tile_temperature, right + 1e-6);
}

TEST(CurrentOptimizer, ObjectiveLooksConvexAlongGrid) {
  // Sampled second differences of max-tile temperature stay nonnegative —
  // the Theorem-3 convexity the optimizer relies on.
  auto sys = deployed_system();
  auto lm = tec::runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  const int n = 12;
  std::vector<double> f;
  for (int s = 0; s <= n; ++s) {
    const double i = 0.9 * *lm * double(s) / double(n);
    auto op = sys.solve(i);
    ASSERT_TRUE(op.has_value());
    f.push_back(op->peak_tile_temperature);
  }
  for (int s = 1; s + 1 <= n; ++s) {
    EXPECT_GE(f[s - 1] + f[s + 1] - 2.0 * f[s], -1e-6) << "at sample " << s;
  }
}

TEST(CurrentOptimizer, NoTecSystemTrivial) {
  auto sys = tec::ElectroThermalSystem::assemble(small_geom(), TileMask(), hot_map(),
                                                 tec::TecDeviceParams::chowdhury_superlattice());
  auto opt = optimize_current(sys);
  EXPECT_TRUE(opt.converged);
  EXPECT_EQ(opt.current, 0.0);
  EXPECT_EQ(opt.tec_input_power, 0.0);
  EXPECT_FALSE(opt.lambda_m.has_value());
}

TEST(CurrentOptimizer, ReportsOperatingPoint) {
  auto sys = deployed_system();
  auto opt = optimize_current(sys);
  EXPECT_EQ(opt.operating_point.current, opt.current);
  EXPECT_DOUBLE_EQ(opt.operating_point.peak_tile_temperature, opt.peak_tile_temperature);
  EXPECT_GT(opt.tec_input_power, 0.0);
  EXPECT_GT(opt.objective_evaluations, 10u);
}

TEST(CurrentOptimizer, TighterToleranceRefinesCurrent) {
  auto sys = deployed_system();
  CurrentOptimizerOptions coarse, fine;
  coarse.current_tol = 0.5;
  fine.current_tol = 1e-5;
  auto a = optimize_current(sys, coarse);
  auto b = optimize_current(sys, fine);
  EXPECT_LE(b.peak_tile_temperature, a.peak_tile_temperature + 1e-9);
  EXPECT_LT(b.objective_evaluations * 0 + std::abs(a.current - b.current), 0.5);
}

}  // namespace
}  // namespace tfc::core
