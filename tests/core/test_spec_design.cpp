/// Spec-first design paths: the greedy/full-cover/design overloads taking a
/// thermal::StackSpec. A paper-equivalent spec must reproduce the geometry
/// overloads bit for bit; stacked/multi-chip specs must respect the spec's
/// TEC-capable site masks.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/baselines.h"
#include "core/cooling_system.h"
#include "core/greedy_deploy.h"
#include "engine/solve_context.h"
#include "tec/device.h"
#include "thermal/stack_spec.h"

namespace tfc::core {
namespace {

/// Small 6x6 paper-style package so Debug-mode designs stay fast.
thermal::PackageGeometry small_geometry() {
  thermal::PackageGeometry g;
  g.tile_rows = 6;
  g.tile_cols = 6;
  return g;
}

/// Concentrated hotspot map: most power on a 2x2 block, so greedy covers a
/// few tiles instead of the whole grid.
linalg::Vector hotspot_powers(std::size_t rows, std::size_t cols, double total) {
  linalg::Vector p(rows * cols);
  const double background = 0.3 * total / double(rows * cols - 4);
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = background;
  const double hot = 0.7 * total / 4.0;
  const std::size_t r0 = rows / 2 - 1, c0 = cols / 2 - 1;
  p[r0 * cols + c0] = hot;
  p[r0 * cols + c0 + 1] = hot;
  p[(r0 + 1) * cols + c0] = hot;
  p[(r0 + 1) * cols + c0 + 1] = hot;
  return p;
}

/// One chip, two stacked dies on a 4x4 grid, top interface restricted.
std::shared_ptr<const thermal::StackSpec> stacked_spec() {
  auto make_die = [](const std::string& name, double power) {
    thermal::LayerSpec l;
    l.kind = thermal::LayerSpec::Kind::kDie;
    l.name = name;
    l.material = thermal::silicon();
    l.thickness = 0.3e-3;
    l.power_w = power;
    return l;
  };
  auto make_iface = [](const std::string& name) {
    thermal::LayerSpec l;
    l.kind = thermal::LayerSpec::Kind::kInterface;
    l.name = name;
    l.material = thermal::thermal_interface();
    l.thickness = 50e-6;
    l.tec_capable = true;
    return l;
  };
  thermal::StackSpec s;
  s.name = "stacked-test";
  thermal::ChipSpec c;
  c.name = "cpu";
  c.width = 6e-3;
  c.height = 6e-3;
  c.tile_rows = 4;
  c.tile_cols = 4;
  thermal::LayerSpec top = make_iface("tim_top");
  top.tec_sites = {Tile{0, 0}};
  c.layers = {make_die("core", 16.0), make_iface("bond"), make_die("cache", 4.0), top};
  s.chips = {c};
  s.validate();
  return std::make_shared<const thermal::StackSpec>(std::move(s));
}

TEST(SpecGreedy, PaperEquivalentSpecMatchesGeometryBitwise) {
  const thermal::PackageGeometry g = small_geometry();
  auto spec = std::make_shared<const thermal::StackSpec>(thermal::StackSpec::single_die(g));
  ASSERT_TRUE(spec->paper_equivalent());

  const linalg::Vector powers = hotspot_powers(g.tile_rows, g.tile_cols, 8.0);
  const auto device = tec::TecDeviceParams::chowdhury_superlattice();
  GreedyDeployOptions opts;

  GreedyDeployResult from_geometry = greedy_deploy(g, powers, device, opts);
  GreedyDeployResult from_spec = greedy_deploy(spec, powers, device, opts);

  EXPECT_EQ(from_spec.success, from_geometry.success);
  EXPECT_EQ(from_spec.deployment.tiles(), from_geometry.deployment.tiles());
  EXPECT_EQ(from_spec.current, from_geometry.current);  // bitwise
}

TEST(SpecGreedy, NullSpecThrows) {
  EXPECT_THROW(greedy_deploy(std::shared_ptr<const thermal::StackSpec>(),
                             linalg::Vector(4), tec::TecDeviceParams::chowdhury_superlattice()),
               std::invalid_argument);
}

TEST(SpecGreedy, DeploymentStaysWithinAllowedSites) {
  auto spec = stacked_spec();
  GreedyDeployOptions opts;
  opts.theta_max = thermal::to_kelvin(200.0);  // generous: greedy succeeds early
  GreedyDeployResult res =
      greedy_deploy(spec, spec->tile_powers(), tec::TecDeviceParams::chowdhury_superlattice(), opts);
  EXPECT_TRUE(res.deployment.grid_size() == 0 ||
              res.deployment.subset_of(spec->tec_allowed_tiles()));
}

TEST(SpecGreedy, OverLimitTilesOutsideSitesFail) {
  // Restrict every interface to a single far-corner site while the hotspot
  // sits mid-die: greedy cannot cover the over-limit tiles and must report
  // failure instead of deploying outside the spec's capable sites.
  auto base = stacked_spec();
  thermal::StackSpec s = *base;
  s.chips[0].layers[0].power_w = 60.0;  // far over any achievable limit
  s.chips[0].layers[1].tec_sites = {Tile{0, 0}};
  s.validate();
  auto spec = std::make_shared<const thermal::StackSpec>(std::move(s));
  GreedyDeployOptions opts;
  opts.theta_max = thermal::to_kelvin(85.0);
  GreedyDeployResult res =
      greedy_deploy(spec, spec->tile_powers(), tec::TecDeviceParams::chowdhury_superlattice(), opts);
  EXPECT_FALSE(res.success);
  EXPECT_TRUE(res.deployment.grid_size() == 0 ||
              res.deployment.subset_of(spec->tec_allowed_tiles()));
}

TEST(SpecFullCover, CoversExactlyTheAllowedSites) {
  auto spec = stacked_spec();
  BaselineResult res = full_cover(spec, spec->tile_powers(),
                                  tec::TecDeviceParams::chowdhury_superlattice());
  EXPECT_EQ(res.deployment.tiles(), spec->tec_allowed_tiles().tiles());
}

TEST(SpecFullCover, NullSpecThrows) {
  EXPECT_THROW(full_cover(std::shared_ptr<const thermal::StackSpec>(), linalg::Vector(4),
                          tec::TecDeviceParams::chowdhury_superlattice()),
               std::invalid_argument);
}

TEST(SpecDesign, RequestWithSpecUsesItsOwnPowers) {
  DesignRequest req;
  req.chip_name = "stacked-test";
  req.spec = stacked_spec();
  req.run_full_cover = false;
  req.theta_limit_celsius = 200.0;  // feasible without TECs: exercises the path
  DesignResult res = design_cooling_system(req);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.chip_name, "stacked-test");
}

TEST(SpecSolve, PaperEquivalentContextMatchesGeometryBitwise) {
  const thermal::PackageGeometry g = small_geometry();
  auto spec = std::make_shared<const thermal::StackSpec>(thermal::StackSpec::single_die(g));
  const linalg::Vector powers = hotspot_powers(g.tile_rows, g.tile_cols, 8.0);
  const auto device = tec::TecDeviceParams::chowdhury_superlattice();

  TileMask deployment(g.tile_rows, g.tile_cols);
  deployment.set(2, 2);
  deployment.set(2, 3);
  deployment.set(3, 2);
  deployment.set(3, 3);

  engine::SolveContext from_geometry(g, deployment, powers, device);
  engine::SolveContext from_spec(spec, deployment, powers, device);
  // Canonicalized: the spec context took the legacy path (spec() is null).
  EXPECT_EQ(from_spec.spec(), nullptr);

  auto op_g = from_geometry.solve(1.5);
  auto op_s = from_spec.solve(1.5);
  ASSERT_TRUE(op_g.has_value());
  ASSERT_TRUE(op_s.has_value());
  EXPECT_EQ(op_s->peak_tile_temperature, op_g->peak_tile_temperature);  // bitwise
  EXPECT_EQ(op_s->tec_input_power, op_g->tec_input_power);
}

TEST(SpecSolve, GenericContextSolvesStackedSpec) {
  auto spec = stacked_spec();
  TileMask deployment(spec->total_tile_rows(), spec->tile_cols());
  deployment.set(1, 1);  // within the unrestricted bottom interface
  engine::SolveContext context(spec, deployment, spec->tile_powers(),
                               tec::TecDeviceParams::chowdhury_superlattice());
  ASSERT_NE(context.spec(), nullptr);
  auto op = context.solve(0.5);
  ASSERT_TRUE(op.has_value());
  EXPECT_GT(op->peak_tile_temperature, spec->ambient);
}

}  // namespace
}  // namespace tfc::core
