#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/greedy_deploy.h"

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 6;
  g.die_width = g.die_height = 3e-3;
  return g;
}

linalg::Vector hot_map() {
  linalg::Vector p(36, 0.10);
  p[2 * 6 + 2] = 0.65;
  p[2 * 6 + 3] = 0.65;
  p[3 * 6 + 2] = 0.55;
  return p;
}

tec::TecDeviceParams dev() { return tec::TecDeviceParams::chowdhury_superlattice(); }

TEST(GreedyDeploy, CoolChipNeedsNoTecs) {
  GreedyDeployOptions o;
  o.theta_max = thermal::to_kelvin(120.0);  // generous limit
  auto r = greedy_deploy(small_geom(), hot_map(), dev(), o);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.deployment.empty());
  EXPECT_EQ(r.current, 0.0);
  EXPECT_EQ(r.iterations.size(), 0u);
  EXPECT_DOUBLE_EQ(r.peak_tile_temperature, r.peak_without_tec);
}

TEST(GreedyDeploy, HotChipGetsCoveredAndMeetsLimit) {
  GreedyDeployOptions o;
  o.theta_max = thermal::to_kelvin(66.0);
  auto r = greedy_deploy(small_geom(), hot_map(), dev(), o);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.deployment.count(), 3u);
  EXPECT_LE(r.peak_tile_temperature, o.theta_max);
  EXPECT_GT(r.current, 0.0);
  EXPECT_GT(r.tec_input_power, 0.0);
  ASSERT_TRUE(r.lambda_m.has_value());
  EXPECT_LT(r.current, *r.lambda_m);
  // The three hot tiles themselves must be covered (they exceed the limit
  // in the passive solve).
  EXPECT_TRUE(r.deployment.test(2, 2));
  EXPECT_TRUE(r.deployment.test(2, 3));
  EXPECT_TRUE(r.deployment.test(3, 2));
}

TEST(GreedyDeploy, TighterLimitNeedsMoreTecs) {
  GreedyDeployOptions loose, tight;
  loose.theta_max = thermal::to_kelvin(66.0);
  tight.theta_max = thermal::to_kelvin(62.0);
  auto a = greedy_deploy(small_geom(), hot_map(), dev(), loose);
  auto b = greedy_deploy(small_geom(), hot_map(), dev(), tight);
  ASSERT_TRUE(a.success && b.success);
  EXPECT_GT(b.deployment.count(), a.deployment.count());
}

TEST(GreedyDeploy, ImpossibleLimitFails) {
  GreedyDeployOptions o;
  o.theta_max = thermal::to_kelvin(46.0);  // 1 K above ambient: hopeless
  auto r = greedy_deploy(small_geom(), hot_map(), dev(), o);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.deployment.empty());
  EXPECT_GT(r.peak_tile_temperature, o.theta_max);
}

TEST(GreedyDeploy, IterationHistoryConsistent) {
  GreedyDeployOptions o;
  o.theta_max = thermal::to_kelvin(62.0);
  auto r = greedy_deploy(small_geom(), hot_map(), dev(), o);
  ASSERT_TRUE(r.success);
  ASSERT_FALSE(r.iterations.empty());
  // Deployment only grows; the last iteration has no tiles over the limit.
  std::size_t prev = 0;
  for (const auto& it : r.iterations) {
    EXPECT_GE(it.tecs_deployed, prev);
    prev = it.tecs_deployed;
  }
  EXPECT_EQ(r.iterations.back().tiles_over_limit, 0u);
  EXPECT_EQ(r.iterations.back().tecs_deployed, r.deployment.count());
}

TEST(GreedyDeploy, CoverageMarginAddsDevices) {
  GreedyDeployOptions plain, margin;
  plain.theta_max = margin.theta_max = thermal::to_kelvin(66.0);
  margin.coverage_margin = 2.0;
  auto a = greedy_deploy(small_geom(), hot_map(), dev(), plain);
  auto b = greedy_deploy(small_geom(), hot_map(), dev(), margin);
  ASSERT_TRUE(a.success && b.success);
  EXPECT_GE(b.deployment.count(), a.deployment.count());
  // Margin deployment still contains the paper's over-limit set.
  EXPECT_TRUE(a.deployment.subset_of(b.deployment));
  // Both meet the limit.
  EXPECT_LE(b.peak_tile_temperature, margin.theta_max);
}

TEST(GreedyDeploy, NegativeMarginRejected) {
  GreedyDeployOptions o;
  o.coverage_margin = -1.0;
  EXPECT_THROW(greedy_deploy(small_geom(), hot_map(), dev(), o), std::invalid_argument);
}

TEST(GreedyDeploy, ZeroMarginIsPaperExact) {
  GreedyDeployOptions plain, zero_margin;
  plain.theta_max = zero_margin.theta_max = thermal::to_kelvin(64.0);
  zero_margin.coverage_margin = 0.0;
  auto a = greedy_deploy(small_geom(), hot_map(), dev(), plain);
  auto b = greedy_deploy(small_geom(), hot_map(), dev(), zero_margin);
  EXPECT_EQ(a.deployment, b.deployment);
  EXPECT_EQ(a.current, b.current);
}

TEST(GreedyDeploy, InvalidDeviceThrows) {
  auto d = dev();
  d.seebeck = -1.0;
  EXPECT_THROW(greedy_deploy(small_geom(), hot_map(), d), std::invalid_argument);
}

TEST(Baselines, FullCoverCoversEverything) {
  auto r = full_cover(small_geom(), hot_map(), dev());
  EXPECT_EQ(r.deployment.count(), 36u);
  EXPECT_GT(r.optimum.current, 0.0);
  EXPECT_DOUBLE_EQ(r.min_peak_temperature, r.optimum.peak_tile_temperature);
}

TEST(Baselines, FullCoverStillCools) {
  auto sys = tec::ElectroThermalSystem::assemble(small_geom(), TileMask(), hot_map(), dev());
  const double peak0 = sys.solve(0.0)->peak_tile_temperature;
  auto r = full_cover(small_geom(), hot_map(), dev());
  EXPECT_LT(r.min_peak_temperature, peak0);
}

TEST(Baselines, ThresholdCoverPicksHottestTiles) {
  auto r = threshold_cover(small_geom(), hot_map(), dev(), 3);
  EXPECT_EQ(r.deployment.count(), 3u);
  // The three injected hot tiles are the three hottest.
  EXPECT_TRUE(r.deployment.test(2, 2));
  EXPECT_TRUE(r.deployment.test(2, 3));
  EXPECT_TRUE(r.deployment.test(3, 2));
}

TEST(Baselines, ThresholdCoverValidatesK) {
  EXPECT_THROW(threshold_cover(small_geom(), hot_map(), dev(), 0), std::invalid_argument);
  EXPECT_THROW(threshold_cover(small_geom(), hot_map(), dev(), 37), std::invalid_argument);
}

TEST(Baselines, GreedyBeatsOrMatchesThresholdWithSameBudget) {
  // With the same device count, covering the over-limit tiles (greedy's
  // choice here equals the hottest tiles) can't be worse than an arbitrary
  // threshold pick of the same size.
  GreedyDeployOptions o;
  o.theta_max = thermal::to_kelvin(66.0);
  auto g = greedy_deploy(small_geom(), hot_map(), dev(), o);
  ASSERT_TRUE(g.success);
  auto t = threshold_cover(small_geom(), hot_map(), dev(), g.deployment.count());
  EXPECT_LE(g.peak_tile_temperature, t.min_peak_temperature + 0.05);
}

}  // namespace
}  // namespace tfc::core
