#include "core/cooling_system.h"

#include <gtest/gtest.h>

namespace tfc::core {
namespace {

DesignRequest small_request() {
  DesignRequest req;
  req.chip_name = "mini";
  req.geometry.tile_rows = req.geometry.tile_cols = 6;
  req.geometry.die_width = req.geometry.die_height = 3e-3;
  req.tile_powers = linalg::Vector(36, 0.10);
  req.tile_powers[2 * 6 + 2] = 0.65;
  req.tile_powers[2 * 6 + 3] = 0.65;
  req.tile_powers[3 * 6 + 2] = 0.55;
  req.theta_limit_celsius = 66.0;
  return req;
}

TEST(CoolingSystem, EndToEndDesignSucceeds) {
  auto res = design_cooling_system(small_request());
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.chip_name, "mini");
  EXPECT_GE(res.tec_count, 3u);
  EXPECT_GT(res.current, 0.0);
  EXPECT_GT(res.tec_power, 0.0);
  EXPECT_GT(res.peak_no_tec_celsius, res.theta_limit_celsius);
  EXPECT_LE(res.peak_greedy_celsius, res.theta_limit_celsius);
  EXPECT_GT(res.runtime_ms, 0.0);
  EXPECT_GE(res.greedy_iterations, 1u);
  ASSERT_TRUE(res.lambda_m.has_value());
}

TEST(CoolingSystem, FullCoverComparisonFields) {
  auto res = design_cooling_system(small_request());
  EXPECT_GT(res.full_cover_current, 0.0);
  EXPECT_GT(res.full_cover_power, 0.0);
  EXPECT_NEAR(res.swing_loss_celsius,
              res.full_cover_min_peak_celsius - res.peak_greedy_celsius, 1e-12);
}

TEST(CoolingSystem, FullCoverCanBeSkipped) {
  auto req = small_request();
  req.run_full_cover = false;
  auto res = design_cooling_system(req);
  EXPECT_EQ(res.full_cover_current, 0.0);
  EXPECT_EQ(res.swing_loss_celsius, 0.0);
}

TEST(CoolingSystem, ConvexityCertificateOnRequest) {
  auto req = small_request();
  req.run_convexity_certificate = true;
  auto res = design_cooling_system(req);
  ASSERT_TRUE(res.convexity.has_value());
  EXPECT_TRUE(res.convexity->certified);
}

TEST(CoolingSystem, InfeasibleLimitReported) {
  auto req = small_request();
  req.theta_limit_celsius = 46.0;
  auto res = design_cooling_system(req);
  EXPECT_FALSE(res.success);
  EXPECT_GT(res.peak_greedy_celsius, req.theta_limit_celsius);
}

TEST(CoolingSystem, DeploymentMapRendersGrid) {
  TileMask m(2, 3);
  m.set(0, 1);
  m.set(1, 2);
  EXPECT_EQ(deployment_map(m), ".#.\n..#\n");
}

TEST(CoolingSystem, TableFormattingContainsFields) {
  auto res = design_cooling_system(small_request());
  const std::string row = format_table_row(res);
  EXPECT_NE(row.find("mini"), std::string::npos);
  EXPECT_NE(row.find("ok"), std::string::npos);
  EXPECT_FALSE(table_header().empty());
}

}  // namespace
}  // namespace tfc::core
