#include "core/multipin.h"

#include <gtest/gtest.h>

#include "core/current_optimizer.h"

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 6;
  g.die_width = g.die_height = 3e-3;
  return g;
}

tec::ElectroThermalSystem deployed_system() {
  TileMask dep(6, 6);
  dep.set(2, 2);
  dep.set(2, 3);
  dep.set(3, 2);
  linalg::Vector p(36, 0.10);
  p[2 * 6 + 2] = 0.65;
  p[2 * 6 + 3] = 0.65;
  p[3 * 6 + 2] = 0.55;
  return tec::ElectroThermalSystem::assemble(small_geom(), dep, p,
                                             tec::TecDeviceParams::chowdhury_superlattice());
}

TEST(MultiPin, EqualCurrentsMatchSharedSolve) {
  auto sys = deployed_system();
  const double i = 4.0;
  auto shared = sys.solve(i);
  auto vec = solve_multi_pin(sys, {i, i, i});
  ASSERT_TRUE(shared && vec);
  EXPECT_TRUE(approx_equal(shared->theta, vec->theta, 1e-8));
  EXPECT_NEAR(shared->tec_input_power, vec->tec_input_power, 1e-9);
}

TEST(MultiPin, ZeroCurrentsArePassive) {
  auto sys = deployed_system();
  auto vec = solve_multi_pin(sys, {0.0, 0.0, 0.0});
  auto passive = sys.solve(0.0);
  ASSERT_TRUE(vec && passive);
  EXPECT_TRUE(approx_equal(vec->theta, passive->theta, 1e-9));
}

TEST(MultiPin, NegativeCurrentRejected) {
  auto sys = deployed_system();
  EXPECT_FALSE(solve_multi_pin(sys, {1.0, -1.0, 1.0}).has_value());
}

TEST(MultiPin, WrongCountThrows) {
  auto sys = deployed_system();
  EXPECT_THROW(solve_multi_pin(sys, {1.0}), std::invalid_argument);
}

TEST(MultiPin, VectorRunawayDetected) {
  auto sys = deployed_system();
  EXPECT_FALSE(solve_multi_pin(sys, {1e4, 1e4, 1e4}).has_value());
}

TEST(MultiPin, OptimizationImprovesOnSharedOptimum) {
  // Per-device currents generalize the single shared current, so the
  // optimized vector drive can only do at least as well (ablation A2).
  auto sys = deployed_system();
  auto shared = optimize_current(sys);
  auto mp = optimize_multi_pin(sys, shared.current);
  EXPECT_LE(mp.peak_tile_temperature, shared.peak_tile_temperature + 1e-9);
  EXPECT_EQ(mp.currents.size(), 3u);
  EXPECT_GE(mp.sweeps, 1u);
}

TEST(MultiPin, ThrowsWithoutTecs) {
  auto sys = tec::ElectroThermalSystem::assemble(small_geom(), TileMask(),
                                                 linalg::Vector(36, 0.1),
                                                 tec::TecDeviceParams::chowdhury_superlattice());
  EXPECT_THROW(optimize_multi_pin(sys, 1.0), std::invalid_argument);
  EXPECT_THROW(optimize_multi_pin(deployed_system(), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace tfc::core
