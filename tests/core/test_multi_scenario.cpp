#include "core/multi_scenario.h"

#include <gtest/gtest.h>

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 6;
  g.die_width = g.die_height = 3e-3;
  return g;
}

tec::TecDeviceParams dev() { return tec::TecDeviceParams::chowdhury_superlattice(); }

/// Two scenarios with disjoint hot spots; their fold (per-tile max) is hotter
/// than either.
std::vector<linalg::Vector> two_scenarios() {
  linalg::Vector a(36, 0.10), b(36, 0.10);
  a[2 * 6 + 2] = a[2 * 6 + 3] = 0.60;  // hot NW in scenario A
  b[4 * 6 + 4] = 0.65;                 // hot SE in scenario B
  return {a, b};
}

GreedyDeployOptions opts(double limit_c) {
  GreedyDeployOptions o;
  o.theta_max = thermal::to_kelvin(limit_c);
  return o;
}

TEST(MultiScenario, CoversBothHotSpots) {
  auto r = greedy_deploy_multi(small_geom(), two_scenarios(), dev(), opts(63.0));
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.deployment.test(2, 2));
  EXPECT_TRUE(r.deployment.test(2, 3));
  EXPECT_TRUE(r.deployment.test(4, 4));
  ASSERT_EQ(r.scenario_peaks.size(), 2u);
  for (double p : r.scenario_peaks) EXPECT_LE(p, opts(63.0).theta_max);
  EXPECT_DOUBLE_EQ(r.peak_tile_temperature,
                   std::max(r.scenario_peaks[0], r.scenario_peaks[1]));
}

TEST(MultiScenario, SingleScenarioMatchesPlainGreedy) {
  auto scenarios = two_scenarios();
  std::vector<linalg::Vector> one = {scenarios[0]};
  auto multi = greedy_deploy_multi(small_geom(), one, dev(), opts(63.0));
  auto plain = greedy_deploy(small_geom(), scenarios[0], dev(), opts(63.0));
  ASSERT_TRUE(multi.success && plain.success);
  EXPECT_EQ(multi.deployment, plain.deployment);
  EXPECT_NEAR(multi.current, plain.current, 0.05);
  EXPECT_NEAR(multi.peak_tile_temperature, plain.peak_tile_temperature, 0.01);
}

TEST(MultiScenario, NeverLargerThanFoldedWorstCase) {
  // Designing on the per-tile max map covers at least the union of scenario
  // hot spots; the scenario-aware design can only be equal or smaller.
  auto scenarios = two_scenarios();
  linalg::Vector folded(36);
  for (std::size_t t = 0; t < 36; ++t) {
    folded[t] = std::max(scenarios[0][t], scenarios[1][t]);
  }
  auto multi = greedy_deploy_multi(small_geom(), scenarios, dev(), opts(63.0));
  auto fold = greedy_deploy(small_geom(), folded, dev(), opts(63.0));
  ASSERT_TRUE(multi.success && fold.success);
  EXPECT_LE(multi.deployment.count(), fold.deployment.count());
}

TEST(MultiScenario, CoolScenariosNeedNothing) {
  std::vector<linalg::Vector> cool = {linalg::Vector(36, 0.02),
                                      linalg::Vector(36, 0.03)};
  auto r = greedy_deploy_multi(small_geom(), cool, dev(), opts(85.0));
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.deployment.empty());
  EXPECT_EQ(r.iterations, 0u);
}

TEST(MultiScenario, ImpossibleLimitFails) {
  auto r = greedy_deploy_multi(small_geom(), two_scenarios(), dev(), opts(46.0));
  EXPECT_FALSE(r.success);
}

TEST(MultiScenario, Validation) {
  EXPECT_THROW(greedy_deploy_multi(small_geom(), {}, dev(), opts(63.0)),
               std::invalid_argument);
  std::vector<linalg::Vector> bad = {linalg::Vector(7)};
  EXPECT_THROW(greedy_deploy_multi(small_geom(), bad, dev(), opts(63.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tfc::core
