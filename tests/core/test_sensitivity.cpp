#include "core/sensitivity.h"

#include <gtest/gtest.h>

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 6;
  g.die_width = g.die_height = 3e-3;
  return g;
}

linalg::Vector hot_map() {
  linalg::Vector p(36, 0.10);
  p[2 * 6 + 2] = 0.65;
  p[2 * 6 + 3] = 0.65;
  return p;
}

TileMask deployment() {
  TileMask m(6, 6);
  m.set(2, 2);
  m.set(2, 3);
  return m;
}

TEST(Sensitivity, ReportsAllFiveParameters) {
  auto rows = device_sensitivities(small_geom(), hot_map(),
                                   tec::TecDeviceParams::chowdhury_superlattice(),
                                   deployment());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].parameter, "seebeck");
  EXPECT_EQ(rows[4].parameter, "g_cold_contact");
}

TEST(Sensitivity, SignsMatchPhysics) {
  auto rows = device_sensitivities(small_geom(), hot_map(),
                                   tec::TecDeviceParams::chowdhury_superlattice(),
                                   deployment());
  const auto find = [&](const std::string& name) {
    for (const auto& r : rows) {
      if (r.parameter == name) return r;
    }
    ADD_FAILURE() << name;
    return rows.front();
  };
  // Stronger Peltier coefficient cools (peak falls as α rises)…
  EXPECT_LT(find("seebeck").peak_per_unit_relative, 0.0);
  // …and lowers the runaway limit (more coupling per ampere).
  EXPECT_LT(find("seebeck").lambda_per_unit_relative, 0.0);
  // More electrical resistance heats.
  EXPECT_GT(find("resistance").peak_per_unit_relative, 0.0);
  // Better contacts cool and raise λ_m.
  EXPECT_LT(find("g_hot_contact").peak_per_unit_relative, 0.0);
  EXPECT_GT(find("g_hot_contact").lambda_per_unit_relative, 0.0);
  // Internal back-conduction hurts pumping.
  EXPECT_GT(find("internal_conductance").peak_per_unit_relative, 0.0);
  // Structural identity: λ_m is a property of the (G, D) pencil alone, and r
  // appears only in the power vector p(i) — so λ_m is exactly r-insensitive.
  EXPECT_NEAR(find("resistance").lambda_per_unit_relative, 0.0, 1e-6);
}

TEST(Sensitivity, InputValidation) {
  auto dev = tec::TecDeviceParams::chowdhury_superlattice();
  EXPECT_THROW(device_sensitivities(small_geom(), hot_map(), dev, TileMask()),
               std::invalid_argument);
  SensitivityOptions o;
  o.relative_step = 0.0;
  EXPECT_THROW(device_sensitivities(small_geom(), hot_map(), dev, deployment(), o),
               std::invalid_argument);
  o.relative_step = 1.0;
  EXPECT_THROW(device_sensitivities(small_geom(), hot_map(), dev, deployment(), o),
               std::invalid_argument);
}

TEST(Sensitivity, SmallerStepRefinesDerivative) {
  auto dev = tec::TecDeviceParams::chowdhury_superlattice();
  SensitivityOptions coarse, fine;
  coarse.relative_step = 0.3;
  fine.relative_step = 0.05;
  auto a = device_sensitivities(small_geom(), hot_map(), dev, deployment(), coarse);
  auto b = device_sensitivities(small_geom(), hot_map(), dev, deployment(), fine);
  // Same signs; magnitudes in the same ballpark (smooth objective).
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_GT(a[k].peak_per_unit_relative * b[k].peak_per_unit_relative, 0.0)
        << a[k].parameter;
  }
}

}  // namespace
}  // namespace tfc::core
