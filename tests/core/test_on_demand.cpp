#include "core/on_demand.h"

#include <gtest/gtest.h>

namespace tfc::core {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 4;
  g.die_width = g.die_height = 2e-3;
  return g;
}

tec::ElectroThermalSystem make_system() {
  TileMask dep(4, 4);
  dep.set(1, 1);
  dep.set(1, 2);
  linalg::Vector p(16, 0.08);
  p[5] = 0.55;
  return tec::ElectroThermalSystem::assemble(small_geom(), dep, p,
                                             tec::TecDeviceParams::chowdhury_superlattice());
}

linalg::Vector hot_map() {
  linalg::Vector p(16, 0.08);
  p[5] = 0.55;
  return p;
}

linalg::Vector cool_map() { return linalg::Vector(16, 0.02); }

OnDemandOptions options_around(double steady_peak_k) {
  OnDemandOptions o;
  o.on_current = 4.0;
  o.theta_on = steady_peak_k - 1.0;
  o.theta_off = steady_peak_k - 3.0;
  o.dt = 2e-3;
  o.steps = 800;
  return o;
}

TEST(OnDemand, NeverActivatesWhenCool) {
  auto sys = make_system();
  OnDemandOptions o;
  o.theta_on = thermal::to_kelvin(200.0);
  o.theta_off = thermal::to_kelvin(150.0);
  o.steps = 100;
  auto r = simulate_on_demand(sys, [&](std::size_t) { return cool_map(); }, o);
  EXPECT_DOUBLE_EQ(r.duty_cycle, 0.0);
  EXPECT_DOUBLE_EQ(r.tec_energy, 0.0);
  EXPECT_EQ(r.switch_count, 0u);
}

TEST(OnDemand, HoldsPeakNearThresholdUnderConstantLoad) {
  auto sys = make_system();
  const double steady_peak = sys.solve(0.0)->peak_tile_temperature;
  auto o = options_around(steady_peak);
  auto r = simulate_on_demand(sys, [&](std::size_t) { return hot_map(); }, o);
  EXPECT_GT(r.duty_cycle, 0.0);
  // Controller caps the excursion: bounded near θ_on (die time constants are
  // milliseconds, so overshoot is small).
  EXPECT_LT(r.max_peak, o.theta_on + 1.0);
  // And it genuinely cools below the uncontrolled steady state.
  EXPECT_LT(r.peak_timeline[r.peak_timeline.size() - 1], steady_peak);
}

TEST(OnDemand, EnergyBelowAlwaysOn) {
  auto sys = make_system();
  const double steady_peak = sys.solve(0.0)->peak_tile_temperature;
  auto o = options_around(steady_peak);
  auto on_demand = simulate_on_demand(sys, [&](std::size_t) { return hot_map(); }, o);

  // Always-on upper bound for the same horizon.
  auto op = sys.solve(o.on_current);
  ASSERT_TRUE(op.has_value());
  const double always_on_energy = op->tec_input_power * o.dt * double(o.steps);
  EXPECT_LT(on_demand.tec_energy, always_on_energy);
  EXPECT_GT(on_demand.tec_energy, 0.0);
}

TEST(OnDemand, BurstWorkloadTogglesController) {
  auto sys = make_system();
  const double steady_peak = sys.solve(0.0)->peak_tile_temperature;
  auto o = options_around(steady_peak);
  o.steps = 1200;
  // Alternate hot bursts and idle phases.
  auto r = simulate_on_demand(
      sys,
      [&](std::size_t s) { return (s / 300) % 2 == 0 ? hot_map() : cool_map(); }, o);
  EXPECT_GT(r.switch_count, 1u);
  EXPECT_GT(r.duty_cycle, 0.0);
  EXPECT_LT(r.duty_cycle, 1.0);
}

/// Each rejected option produces its own std::invalid_argument naming the
/// offending field (not one catch-all message).
std::string rejection_message(const OnDemandOptions& o) {
  auto sys = make_system();
  try {
    (void)simulate_on_demand(sys, [](std::size_t) { return hot_map(); }, o);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(OnDemand, RejectsNonPositiveDt) {
  OnDemandOptions o;
  o.dt = 0.0;
  EXPECT_NE(rejection_message(o).find("dt must be positive"), std::string::npos);
  o.dt = -1e-3;
  EXPECT_NE(rejection_message(o).find("dt must be positive"), std::string::npos);
}

TEST(OnDemand, RejectsZeroSteps) {
  OnDemandOptions o;
  o.steps = 0;
  EXPECT_NE(rejection_message(o).find("steps must be nonzero"), std::string::npos);
}

TEST(OnDemand, RejectsInvertedHysteresisBand) {
  OnDemandOptions o;
  o.theta_on = o.theta_off = thermal::to_kelvin(80.0);  // not a band
  EXPECT_NE(rejection_message(o).find("theta_off"), std::string::npos);
  o.theta_off = o.theta_on + 5.0;  // inverted
  const std::string msg = rejection_message(o);
  EXPECT_NE(msg.find("theta_off"), std::string::npos);
  EXPECT_NE(msg.find("must be below theta_on"), std::string::npos);
}

TEST(OnDemand, RejectsNonPositiveOnCurrent) {
  OnDemandOptions o;
  o.on_current = 0.0;
  EXPECT_NE(rejection_message(o).find("on_current must be positive"),
            std::string::npos);
}

TEST(OnDemand, RejectsDegenerateSystemAndPowerMap) {
  // No-TEC system rejected.
  auto bare = tec::ElectroThermalSystem::assemble(small_geom(), TileMask(), hot_map(),
                                                  tec::TecDeviceParams::chowdhury_superlattice());
  EXPECT_THROW(simulate_on_demand(bare, [&](std::size_t) { return hot_map(); }, {}),
               std::invalid_argument);
  // Wrong-size power map rejected at the first step.
  auto sys = make_system();
  EXPECT_THROW(
      simulate_on_demand(sys, [&](std::size_t) { return linalg::Vector(3); }, {}),
      std::invalid_argument);
}

TEST(OnDemand, TimelineShapeConsistent) {
  auto sys = make_system();
  const double steady_peak = sys.solve(0.0)->peak_tile_temperature;
  auto o = options_around(steady_peak);
  o.steps = 50;
  auto r = simulate_on_demand(sys, [&](std::size_t) { return hot_map(); }, o);
  EXPECT_EQ(r.peak_timeline.size(), 50u);
  EXPECT_EQ(r.tec_on.size(), 50u);
  EXPECT_DOUBLE_EQ(r.max_peak, linalg::max_entry(r.peak_timeline));
}

}  // namespace
}  // namespace tfc::core
