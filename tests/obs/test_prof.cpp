/// PR 9 observability: the always-on hierarchical profiler (tfc::obs::prof)
/// — tree shape, windowed snapshot-and-reset discipline, self/total/min/max
/// statistics, the collapsed-stack and JSON exporters, the overhead model,
/// and cross-thread (live + retired) merging.
#include "obs/prof.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "io/json.h"
#include "obs/obs.h"

namespace tfc::obs::prof {
namespace {

/// Busy-wait so a span has a guaranteed-nonzero wall time without relying
/// on sleep granularity.
void spin_ns(std::int64_t ns) {
  const std::int64_t t0 = prof_now_ns();
  while (prof_now_ns() - t0 < ns) {
  }
}

const ProfileNode* find(const std::vector<ProfileNode>& list, const std::string& name) {
  for (const auto& n : list) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

/// Enable the profiler and discard everything recorded before this test.
void fresh_window() {
  Profiler::global().enable();
  (void)Profiler::global().snapshot(true);
}

void teardown() {
  Profiler::global().disable();
  (void)Profiler::global().snapshot(true);
}

TEST(Prof, DisabledSpansRecordNothing) {
  fresh_window();
  Profiler::global().disable();
  { TFC_SPAN("prof_test_disabled"); }
  const auto snap = Profiler::global().snapshot(true);
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(find(snap.roots, "prof_test_disabled"), nullptr);
  teardown();
}

TEST(Prof, NestedSpansBuildTreeKeyedByPath) {
  fresh_window();
  {
    TFC_SPAN("prof_test_outer");
    { TFC_SPAN("prof_test_inner"); }
    { TFC_SPAN("prof_test_inner"); }
  }
  { TFC_SPAN("prof_test_inner"); }  // same name, different path => new root
  const auto snap = Profiler::global().snapshot(true);

  const ProfileNode* outer = find(snap.roots, "prof_test_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const ProfileNode* inner = find(outer->children, "prof_test_inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  const ProfileNode* root_inner = find(snap.roots, "prof_test_inner");
  ASSERT_NE(root_inner, nullptr);
  EXPECT_EQ(root_inner->count, 1u);
  teardown();
}

TEST(Prof, SelfIsTotalMinusChildren) {
  fresh_window();
  {
    TFC_SPAN("prof_test_parent");
    spin_ns(2'000'000);
    {
      TFC_SPAN("prof_test_child");
      spin_ns(2'000'000);
    }
  }
  const auto snap = Profiler::global().snapshot(true);
  const ProfileNode* parent = find(snap.roots, "prof_test_parent");
  ASSERT_NE(parent, nullptr);
  const ProfileNode* child = find(parent->children, "prof_test_child");
  ASSERT_NE(child, nullptr);
  EXPECT_GE(parent->total_ns, child->total_ns);
  EXPECT_EQ(parent->child_ns, child->total_ns);
  EXPECT_EQ(parent->self_ns(), parent->total_ns - parent->child_ns);
  EXPECT_GE(parent->self_ns(), 1'000'000u);  // spun 2 ms outside the child
  EXPECT_GE(child->self_ns(), 1'000'000u);
  teardown();
}

TEST(Prof, MinMaxTrackExtremesPerWindow) {
  fresh_window();
  { TFC_SPAN("prof_test_minmax"); }  // ~0 ns
  {
    TFC_SPAN("prof_test_minmax");
    spin_ns(2'000'000);
  }
  const auto snap = Profiler::global().snapshot(true);
  const ProfileNode* n = find(snap.roots, "prof_test_minmax");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->count, 2u);
  EXPECT_LE(n->min_ns, n->max_ns);
  EXPECT_GE(n->max_ns, 2'000'000u);
  EXPECT_LT(n->min_ns, 2'000'000u);
  teardown();
}

TEST(Prof, WindowedResetCountsEachFrameExactlyOnce) {
  fresh_window();
  for (int k = 0; k < 3; ++k) {
    TFC_SPAN("prof_test_window");
  }
  const auto first = Profiler::global().snapshot(true);
  const ProfileNode* n1 = find(first.roots, "prof_test_window");
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->count, 3u);
  EXPECT_TRUE(first.windowed);

  // The window was drained: an immediate second reset snapshot is empty.
  const auto second = Profiler::global().snapshot(true);
  EXPECT_EQ(find(second.roots, "prof_test_window"), nullptr);

  { TFC_SPAN("prof_test_window"); }
  { TFC_SPAN("prof_test_window"); }
  const auto third = Profiler::global().snapshot(true);
  const ProfileNode* n3 = find(third.roots, "prof_test_window");
  ASSERT_NE(n3, nullptr);
  EXPECT_EQ(n3->count, 2u);
  teardown();
}

TEST(Prof, CumulativeSnapshotDoesNotDrain) {
  fresh_window();
  { TFC_SPAN("prof_test_cumulative"); }
  const auto a = Profiler::global().snapshot(false);
  const auto b = Profiler::global().snapshot(false);
  const ProfileNode* na = find(a.roots, "prof_test_cumulative");
  const ProfileNode* nb = find(b.roots, "prof_test_cumulative");
  ASSERT_NE(na, nullptr);
  ASSERT_NE(nb, nullptr);
  EXPECT_EQ(na->count, 1u);
  EXPECT_EQ(nb->count, 1u);
  EXPECT_FALSE(a.windowed);
  teardown();
}

TEST(Prof, ThreadsMergeByNamePathIncludingRetired) {
  fresh_window();
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int k = 0; k < kSpansEach; ++k) {
        TFC_SPAN("prof_test_worker_root");
        TFC_SPAN("prof_test_worker_leaf");
      }
    });
  }
  for (auto& w : workers) w.join();  // threads exited => trees retired

  { TFC_SPAN("prof_test_worker_root"); }  // main thread merges into same path
  const auto snap = Profiler::global().snapshot(true);
  const ProfileNode* root = find(snap.roots, "prof_test_worker_root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->count, std::uint64_t(kThreads * kSpansEach + 1));
  const ProfileNode* leaf = find(root->children, "prof_test_worker_leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, std::uint64_t(kThreads * kSpansEach));
  teardown();
}

TEST(Prof, AggregateByNameSumsEveryTreePosition) {
  fresh_window();
  {
    TFC_SPAN("prof_test_agg_a");
    spin_ns(1'000'000);
    {
      TFC_SPAN("prof_test_agg_b");
      spin_ns(3'000'000);
    }
  }
  { TFC_SPAN("prof_test_agg_b"); }  // root position of the same name
  const auto snap = Profiler::global().snapshot(true);
  const auto stats = aggregate_by_name(snap);
  ASSERT_GE(stats.size(), 2u);
  // Sorted by self time descending: b spun 3 ms, a only 1 ms.
  const auto* sa = &stats[0];
  const auto* sb = &stats[0];
  for (const auto& s : stats) {
    if (s.name == "prof_test_agg_a") sa = &s;
    if (s.name == "prof_test_agg_b") sb = &s;
  }
  EXPECT_EQ(sb->count, 2u);  // both tree positions summed
  EXPECT_EQ(sa->count, 1u);
  EXPECT_GT(sb->self_ns, sa->self_ns);
  EXPECT_EQ(stats[0].name, "prof_test_agg_b");
  teardown();
}

TEST(Prof, CollapsedExportGrammarAndSanitization) {
  fresh_window();
  // Direct enter/leave with a hostile name: the exporter must sanitize the
  // separator characters so flamegraph.pl still parses the line.
  Frame f = enter("bad name;with\tseps");
  spin_ns(1'500'000);
  leave(f);
  {
    TFC_SPAN("prof_test_collapsed_root");
    spin_ns(1'500'000);
    {
      TFC_SPAN("prof_test_collapsed_leaf");
      spin_ns(1'500'000);
    }
  }
  const auto snap = Profiler::global().snapshot(true);
  const std::string text = to_collapsed(snap);

  EXPECT_NE(text.find("bad_name_with_seps "), std::string::npos);
  EXPECT_NE(text.find("prof_test_collapsed_root;prof_test_collapsed_leaf "),
            std::string::npos);
  // Grammar: every line is `frame(;frame)* <integer>`.
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // exporter terminates every line
    const std::string line = text.substr(start, end - start);
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_EQ(line.find(' '), space) << line;  // single space, before count
    for (const char* bad : {";;", " ;", "; "}) {
      EXPECT_EQ(line.find(bad), std::string::npos) << line;
    }
    start = end + 1;
  }
  teardown();
}

TEST(Prof, JsonExportParsesWithDocumentedShape) {
  fresh_window();
  {
    TFC_SPAN("prof_test_json_root");
    spin_ns(1'000'000);
    { TFC_SPAN("prof_test_json_leaf"); }
  }
  const auto snap = Profiler::global().snapshot(false);
  const io::JsonValue doc = io::parse_json(to_json(snap));

  EXPECT_TRUE(doc.bool_or("enabled", false));
  EXPECT_FALSE(doc.bool_or("windowed", true));
  EXPECT_GE(doc.number_or("wall_ms", -1.0), 0.0);
  EXPECT_GE(doc.number_or("total_count", 0.0), 2.0);
  ASSERT_TRUE(doc.at("kernels").is_array());
  ASSERT_TRUE(doc.at("roots").is_array());

  bool found_root = false;
  for (const io::JsonValue& root : doc.at("roots").as_array()) {
    if (root.string_or("name", "") != "prof_test_json_root") continue;
    found_root = true;
    EXPECT_EQ(root.number_or("count", 0.0), 1.0);
    EXPECT_GE(root.number_or("total_ms", 0.0), root.number_or("self_ms", 0.0));
    EXPECT_GE(root.number_or("max_ms", 0.0), root.number_or("min_ms", 1e300));
    ASSERT_TRUE(root.at("children").is_array());
    ASSERT_EQ(root.at("children").as_array().size(), 1u);
    EXPECT_EQ(root.at("children").as_array()[0].string_or("name", ""),
              "prof_test_json_leaf");
  }
  EXPECT_TRUE(found_root);
  teardown();
}

TEST(Prof, OverheadModelIsCalibratedAndSmall) {
  fresh_window();
  EXPECT_GT(Profiler::global().frame_cost_ns(), 0.0);
  // A realistic per-frame cost: more than a clock read, less than 100 µs
  // even under sanitizers.
  EXPECT_LT(Profiler::global().frame_cost_ns(), 100'000.0);

  spin_ns(1'000'000);  // give the denominator some enabled wall time
  for (int k = 0; k < 256; ++k) {
    TFC_SPAN("prof_test_overhead");
  }
  const double ratio = Profiler::global().overhead_ratio();
  EXPECT_GE(ratio, 0.0);
  EXPECT_LT(ratio, 0.9);  // a frames-only loop is the worst case

  Profiler::global().disable();
  EXPECT_EQ(Profiler::global().overhead_ratio(), 0.0);
  teardown();
}

TEST(Prof, SpanOrderingKeepsTraceAndProfilerConsistent) {
  // TFC_SPAN must feed both layers when a request trace is active and the
  // profiler is on: same nesting, same names.
  fresh_window();
  RequestTrace trace;
  {
    ScopedRequestContext ctx("prof-test-trace", &trace);
    TFC_SPAN("prof_test_both_outer");
    { TFC_SPAN("prof_test_both_inner"); }
  }
  const auto snap = Profiler::global().snapshot(true);
  const ProfileNode* outer = find(snap.roots, "prof_test_both_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NE(find(outer->children, "prof_test_both_inner"), nullptr);

  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].name, "prof_test_both_outer");
  EXPECT_EQ(trace.spans()[1].name, "prof_test_both_inner");
  teardown();
}

}  // namespace
}  // namespace tfc::obs::prof
