#include "obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace tfc::obs {
namespace {

/// Save/restore the global logger around a test so suites can run in any
/// order (and alongside the CLI tests, which reconfigure it too).
class ScopedLogger {
 public:
  ScopedLogger() : level_(Logger::global().level()), sinks_(Logger::global().sinks()) {}
  ~ScopedLogger() {
    Logger::global().set_level(level_);
    Logger::global().set_sinks(std::move(sinks_));
  }

 private:
  Level level_;
  std::vector<std::shared_ptr<Sink>> sinks_;
};

// ---------------------------------------------------------------------------
// Levels

TEST(Log, LevelNamesRoundTrip) {
  for (Level l : {Level::kTrace, Level::kDebug, Level::kInfo, Level::kWarn, Level::kError}) {
    Level parsed;
    std::string name = level_name(l);
    ASSERT_TRUE(parse_level(name, parsed)) << name;
    EXPECT_EQ(parsed, l);
  }
}

TEST(Log, ParseLevelAliasesAndCase) {
  Level l;
  EXPECT_TRUE(parse_level("WaRn", l));
  EXPECT_EQ(l, Level::kWarn);
  EXPECT_TRUE(parse_level("warning", l));
  EXPECT_EQ(l, Level::kWarn);
  EXPECT_TRUE(parse_level("none", l));
  EXPECT_EQ(l, Level::kOff);
  EXPECT_FALSE(parse_level("loud", l));
  EXPECT_FALSE(parse_level("", l));
}

TEST(Log, RuntimeLevelFiltersRecords) {
  ScopedLogger guard;
  auto& logger = Logger::global();
  std::ostringstream captured;
  logger.set_sinks({std::make_shared<TextSink>(captured)});
  logger.set_level(Level::kWarn);

  TFC_LOG_INFO("quiet_event", {"k", 1});
  TFC_LOG_WARN("loud_event", {"k", 2});

  const std::string text = captured.str();
  EXPECT_EQ(text.find("quiet_event"), std::string::npos);
  EXPECT_NE(text.find("WARN loud_event k=2"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  ScopedLogger guard;
  auto& logger = Logger::global();
  std::ostringstream captured;
  logger.set_sinks({std::make_shared<TextSink>(captured)});
  logger.set_level(Level::kOff);
  TFC_LOG_ERROR("even_errors");
  EXPECT_TRUE(captured.str().empty());
}

TEST(Log, FieldsAreNotEvaluatedWhenFiltered) {
  ScopedLogger guard;
  auto& logger = Logger::global();
  logger.set_sinks({std::make_shared<NullSink>()});
  logger.set_level(Level::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string("payload");
  };
  TFC_LOG_DEBUG("gated", {"v", expensive()});
  EXPECT_EQ(evaluations, 0);
  TFC_LOG_ERROR("passes", {"v", expensive()});
  EXPECT_EQ(evaluations, 1);
}

// ---------------------------------------------------------------------------
// Text sink formatting

TEST(Log, TextSinkQuotesSpaceyStrings) {
  ScopedLogger guard;
  auto& logger = Logger::global();
  std::ostringstream captured;
  logger.set_sinks({std::make_shared<TextSink>(captured)});
  logger.set_level(Level::kTrace);
  TFC_LOG_INFO("ev", {"plain", "word"}, {"spacey", "two words"}, {"empty", ""});
  const std::string text = captured.str();
  EXPECT_NE(text.find("plain=word"), std::string::npos);
  EXPECT_NE(text.find("spacey=\"two words\""), std::string::npos);
  EXPECT_NE(text.find("empty=\"\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSONL sink

TEST(Log, JsonlSinkEscapesControlAndQuoteCharacters) {
  ScopedLogger guard;
  auto& logger = Logger::global();
  std::ostringstream captured;
  logger.set_sinks({std::make_shared<JsonlSink>(captured)});
  logger.set_level(Level::kTrace);
  TFC_LOG_WARN("tricky", {"msg", std::string("a\"b\\c\nd\te\x01") + "f"});

  const std::string line = captured.str();
  EXPECT_NE(line.find("\"level\":\"WARN\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"tricky\""), std::string::npos);
  EXPECT_NE(line.find("a\\\"b\\\\c\\nd\\te\\u0001f"), std::string::npos);
  // Raw control characters must never reach the stream.
  EXPECT_EQ(line.find('\x01'), std::string::npos);
  // Exactly one line per record.
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(Log, JsonlSinkRendersTypedValues) {
  ScopedLogger guard;
  auto& logger = Logger::global();
  std::ostringstream captured;
  logger.set_sinks({std::make_shared<JsonlSink>(captured)});
  logger.set_level(Level::kTrace);
  TFC_LOG_INFO("typed", {"i", -3}, {"u", std::uint64_t{7}}, {"d", 2.5}, {"b", true},
               {"nan", std::nan("")});
  const std::string line = captured.str();
  EXPECT_NE(line.find("\"i\":-3"), std::string::npos);
  EXPECT_NE(line.find("\"u\":7"), std::string::npos);
  EXPECT_NE(line.find("\"d\":2.5"), std::string::npos);
  EXPECT_NE(line.find("\"b\":true"), std::string::npos);
  // Non-finite doubles are quoted (bare nan is not valid JSON).
  EXPECT_NE(line.find("\"nan\":\"nan\""), std::string::npos);
}

TEST(Log, JsonEscapeHelper) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\n\r\t\b\f"), "\\n\\r\\t\\b\\f");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

// ---------------------------------------------------------------------------
// Metrics: counters and gauges

TEST(Metrics, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.increment(5);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  // reset() zeroes values but keeps the same objects alive.
  reg.reset();
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(a.value(), 0u);
}

TEST(Metrics, RegistryThreadSafety) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Mix of shared-counter increments, per-thread creation, and
      // histogram records to exercise registry locking + atomic paths.
      auto& shared = reg.counter("shared");
      auto& hist = reg.histogram("h");
      for (int i = 0; i < kIncrements; ++i) {
        shared.increment();
        reg.counter("per_thread_" + std::to_string(t)).increment();
        hist.record(double(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("shared").value(), std::uint64_t(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("per_thread_" + std::to_string(t)).value(),
              std::uint64_t(kIncrements));
  }
  EXPECT_EQ(reg.histogram("h").summary().count, std::uint64_t(kThreads) * kIncrements);
}

// ---------------------------------------------------------------------------
// Metrics: histograms

TEST(Metrics, HistogramExactStatsBelowCapacity) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.record(double(v));
  const auto s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  // Linear interpolation between closest ranks (NumPy default):
  // rank = q/100 * (n-1) over the sorted samples 1..100.
  EXPECT_NEAR(s.p50, 50.5, 1e-12);
  EXPECT_NEAR(s.p95, 95.05, 1e-12);
  EXPECT_NEAR(s.p99, 99.01, 1e-12);
}

TEST(Metrics, PercentileInterpolation) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Histogram::percentile(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Histogram::percentile(sorted, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Histogram::percentile(sorted, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(Histogram::percentile(sorted, 25.0), 17.5);
  EXPECT_DOUBLE_EQ(Histogram::percentile({7.0}, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(Histogram::percentile({}, 50.0), 0.0);
}

TEST(Metrics, HistogramReservoirBoundsMemoryButKeepsExactAggregates) {
  Histogram h(64);  // tiny reservoir to force sampling
  const int n = 100000;
  for (int v = 0; v < n; ++v) h.record(double(v));
  const auto s = h.summary();
  EXPECT_EQ(s.count, std::uint64_t(n));
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, double(n - 1));
  EXPECT_DOUBLE_EQ(s.mean, double(n - 1) / 2.0);
  // Percentiles are sampled, but over a uniform stream the median of 64
  // uniform draws is within the bulk of the range with huge probability.
  EXPECT_GT(s.p50, 0.1 * n);
  EXPECT_LT(s.p50, 0.9 * n);
}

TEST(Metrics, RegistryJsonExport) {
  MetricsRegistry reg;
  reg.counter("cg.solves").increment(3);
  reg.gauge("lambda_m").set(1.25);
  reg.histogram("iters").record(10.0);
  reg.histogram("iters").record(20.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"cg.solves\":3"), std::string::npos);
  EXPECT_NE(json.find("\"lambda_m\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"iters\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"mean\":15"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(Trace, SpansAreNoOpsWhenDisabled) {
  auto& collector = TraceCollector::global();
  collector.disable();
  collector.clear();
  {
    TFC_SPAN("ignored");
  }
  EXPECT_EQ(collector.event_count(), 0u);
}

TEST(Trace, NestedSpansProduceChromeJson) {
  auto& collector = TraceCollector::global();
  collector.clear();
  collector.enable();
  {
    TFC_SPAN("outer");
    {
      TFC_SPAN("inner");
    }
  }
  collector.disable();
  ASSERT_EQ(collector.event_count(), 2u);

  const std::string json = collector.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  collector.clear();
  EXPECT_EQ(collector.event_count(), 0u);
}

TEST(Trace, OuterSpanContainsInner) {
  auto& collector = TraceCollector::global();
  collector.clear();
  collector.enable();
  std::int64_t outer_begin = 0;
  {
    outer_begin = trace_now_us();
    TFC_SPAN("outer");
    {
      TFC_SPAN("inner");
      // Busy-wait a little so durations are strictly measurable.
      const auto until = trace_now_us() + 200;
      while (trace_now_us() < until) {
      }
    }
  }
  collector.disable();
  ASSERT_EQ(collector.event_count(), 2u);

  // Inner closes first, so it is recorded first.
  const std::string json = collector.to_chrome_json();
  const auto inner_pos = json.find("\"name\":\"inner\"");
  const auto outer_pos = json.find("\"name\":\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);

  auto dur_after = [&json](std::size_t pos) {
    const auto d = json.find("\"dur\":", pos);
    return std::stoll(json.substr(d + 6));
  };
  // The outer span must fully contain the inner one.
  EXPECT_GE(dur_after(outer_pos), dur_after(inner_pos));
  EXPECT_GE(dur_after(inner_pos), 150);
  EXPECT_GE(outer_begin, 0);
  collector.clear();
}

TEST(Trace, SpansFromMultipleThreadsGetDistinctTids) {
  auto& collector = TraceCollector::global();
  collector.clear();
  collector.enable();
  std::thread worker([] { TFC_SPAN("worker_span"); });
  worker.join();
  {
    TFC_SPAN("main_span");
  }
  collector.disable();
  ASSERT_EQ(collector.event_count(), 2u);
  const std::string json = collector.to_chrome_json();
  // Two different thread ids must appear.
  const auto first = json.find("\"tid\":");
  const auto second = json.find("\"tid\":", first + 1);
  ASSERT_NE(second, std::string::npos);
  EXPECT_NE(json.substr(first, json.find(',', first) - first),
            json.substr(second, json.find(',', second) - second));
  collector.clear();
}

// ---------------------------------------------------------------------------
// Build / compile-level info

TEST(Obs, CompileLevelNameIsKnown) {
  const std::string name = compile_level_name();
  Level parsed;
  EXPECT_TRUE(parse_level(name, parsed)) << name;
}

}  // namespace
}  // namespace tfc::obs
