/// tfc::obs::health — Certificate tolerance judgments and the rolling
/// HealthMonitor verdict machine, physics-free by construction.
#include "obs/health.h"

#include <gtest/gtest.h>

#include <string>

namespace tfc::obs::health {
namespace {

Certificate good_certificate() {
  Certificate c;
  c.current_a = 2.0;
  c.rel_residual = 1e-12;
  c.energy_balance_rel = 1e-11;
  c.theta_min_k = 300.0;
  c.theta_max_k = 360.0;
  c.lambda_margin_a = 5.0;
  c.has_lambda_margin = true;
  return c;
}

TEST(Certificate, DefaultsNeverTripToleranceTheyWereNotMeasuredAgainst) {
  Certificate c;  // nothing computed: ratios negative, bounds zeroed
  c.theta_min_k = 300.0;
  c.theta_max_k = 320.0;
  EXPECT_TRUE(c.pass(Tolerances{}));
}

TEST(Certificate, EachComputedFieldIsJudged) {
  const Tolerances tol;
  EXPECT_TRUE(good_certificate().pass(tol));

  Certificate c = good_certificate();
  c.rel_residual = 1e-3;
  EXPECT_FALSE(c.pass(tol));

  c = good_certificate();
  c.energy_balance_rel = 1.0;
  EXPECT_FALSE(c.pass(tol));

  c = good_certificate();
  c.theta_max_k = 1500.0;  // above the sanity ceiling
  EXPECT_FALSE(c.pass(tol));

  c = good_certificate();
  c.theta_min_k = 10.0;  // below the sanity floor
  EXPECT_FALSE(c.pass(tol));

  c = good_certificate();
  c.lambda_margin_a = -0.5;  // operating beyond the runaway limit
  EXPECT_FALSE(c.pass(tol));

  c = good_certificate();
  c.degraded = true;
  EXPECT_FALSE(c.pass(tol));
}

TEST(Certificate, DescribeNamesTheJudgedQuantities) {
  const std::string text = good_certificate().describe();
  EXPECT_NE(text.find("rel_residual"), std::string::npos);
  EXPECT_NE(text.find("energy_balance"), std::string::npos);
  EXPECT_NE(text.find("theta_k"), std::string::npos);
  EXPECT_NE(text.find("lambda_margin_a"), std::string::npos);
}

TEST(HealthMonitor, StartsGreenAndStaysGreenOnPassingCertificates) {
  HealthMonitor monitor;
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);
  EXPECT_TRUE(monitor.record_certificate("a", good_certificate()));
  EXPECT_TRUE(monitor.record_certificate("b", good_certificate()));
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);
  EXPECT_TRUE(monitor.offending_scopes().empty());
  EXPECT_EQ(monitor.total_samples(), 2u);
  EXPECT_EQ(monitor.total_violations(), 0u);
}

TEST(HealthMonitor, ViolationFlipsRedAndNamesTheScope) {
  HealthMonitor monitor;
  EXPECT_TRUE(monitor.record_certificate("healthy", good_certificate()));
  Certificate bad = good_certificate();
  bad.rel_residual = 0.1;
  EXPECT_FALSE(monitor.record_certificate("sick", bad));

  EXPECT_EQ(monitor.verdict(), Verdict::kRed);
  const auto offenders = monitor.offending_scopes();
  ASSERT_EQ(offenders.size(), 1u);
  EXPECT_EQ(offenders[0], "sick");
  EXPECT_EQ(monitor.total_violations(), 1u);
}

TEST(HealthMonitor, DegradedIsBetweenGreenAndRed) {
  HealthMonitor monitor;
  monitor.record_degraded("s");
  EXPECT_EQ(monitor.verdict(), Verdict::kDegraded);

  Certificate bad = good_certificate();
  bad.energy_balance_rel = 1.0;
  monitor.record_certificate("s", bad);
  EXPECT_EQ(monitor.verdict(), Verdict::kRed);  // red dominates degraded
}

TEST(HealthMonitor, VerdictRecoversOnceTheWindowTurnsOver) {
  HealthMonitor monitor(Tolerances{}, /*window=*/4);
  Certificate bad = good_certificate();
  bad.rel_residual = 0.1;
  monitor.record_certificate("s", bad);
  EXPECT_EQ(monitor.verdict(), Verdict::kRed);

  for (int k = 0; k < 4; ++k) monitor.record_certificate("s", good_certificate());
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);

  // Lifetime counters keep the forensic trail after recovery.
  const auto snapshot = monitor.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].second.violations, 1u);
  EXPECT_EQ(snapshot[0].second.samples, 5u);
  EXPECT_EQ(snapshot[0].second.window_samples, 4u);
  EXPECT_EQ(snapshot[0].second.window_violations, 0u);
}

TEST(HealthMonitor, CrossCheckDriftIsAViolation) {
  HealthMonitor monitor;
  EXPECT_TRUE(monitor.record_cross_check("s", 1e-9));
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);

  EXPECT_FALSE(monitor.record_cross_check("s", 1e-3));
  EXPECT_EQ(monitor.verdict(), Verdict::kRed);

  const auto snapshot = monitor.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].second.cross_checks, 2u);
  EXPECT_EQ(snapshot[0].second.cross_check_failures, 1u);
  EXPECT_DOUBLE_EQ(snapshot[0].second.last_cross_check_drift, 1e-3);
}

TEST(HealthMonitor, NegativeDriftMeansTheCheckerFailedAndCounts) {
  // A cross-check whose second backend produced no θ (drift unknown) is a
  // failure: the monitor must not shrug off an unverifiable solve.
  HealthMonitor monitor;
  EXPECT_FALSE(monitor.record_cross_check("s", -1.0));
  EXPECT_EQ(monitor.verdict(), Verdict::kRed);
}

TEST(HealthMonitor, TracksWorstObservedRatiosPerScope) {
  HealthMonitor monitor;
  Certificate c = good_certificate();
  c.rel_residual = 1e-12;
  monitor.record_certificate("s", c);
  c.rel_residual = 1e-8;
  c.energy_balance_rel = 1e-6;
  monitor.record_certificate("s", c);
  c.rel_residual = 1e-13;
  monitor.record_certificate("s", c);

  const auto snapshot = monitor.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot[0].second.worst_rel_residual, 1e-8);
  EXPECT_DOUBLE_EQ(snapshot[0].second.worst_energy_balance_rel, 1e-6);
}

TEST(HealthMonitor, SnapshotIsNameSortedAcrossScopes) {
  HealthMonitor monitor;
  monitor.record_certificate("zeta", good_certificate());
  monitor.record_certificate("alpha", good_certificate());
  const auto snapshot = monitor.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "alpha");
  EXPECT_EQ(snapshot[1].first, "zeta");
}

TEST(HealthMonitor, CustomTolerancesAreApplied) {
  Tolerances strict;
  strict.max_rel_residual = 1e-14;
  HealthMonitor monitor(strict);
  EXPECT_FALSE(monitor.record_certificate("s", good_certificate()));
  EXPECT_EQ(monitor.verdict(), Verdict::kRed);
}

TEST(VerdictName, StableLowercaseNames) {
  EXPECT_STREQ(verdict_name(Verdict::kGreen), "green");
  EXPECT_STREQ(verdict_name(Verdict::kDegraded), "degraded");
  EXPECT_STREQ(verdict_name(Verdict::kRed), "red");
}

}  // namespace
}  // namespace tfc::obs::health
