/// PR 4 observability: request-scoped traces, Prometheus exposition, the
/// flight recorder, and the snapshot-and-reset window semantics.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace tfc::obs {
namespace {

// ---------------------------------------------------------------------------
// RequestTrace

TEST(RequestTrace, OpenCloseBuildsNestedTree) {
  RequestTrace trace;
  const int outer = trace.open("outer", 100);
  const int inner = trace.open("inner", 150);
  trace.close(inner, 170);
  trace.close(outer, 300);

  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].parent, -1);
  EXPECT_EQ(trace.spans()[1].parent, outer);
  EXPECT_EQ(trace.spans()[0].dur_us, 200);
  EXPECT_EQ(trace.spans()[1].dur_us, 20);
}

TEST(RequestTrace, CloseIsTolerantOfLeakedChildren) {
  RequestTrace trace;
  const int outer = trace.open("outer", 0);
  trace.open("leaked", 10);  // never closed explicitly
  trace.close(outer, 100);
  // Closing the parent popped the leaked child; a new span is a root again.
  const int next = trace.open("next", 200);
  EXPECT_EQ(trace.spans()[std::size_t(next)].parent, -1);
}

TEST(RequestTrace, TotalsSumAcrossRepeatedSpans) {
  RequestTrace trace;
  for (int k = 0; k < 3; ++k) {
    const int idx = trace.open("sparse_refactor", k * 100);
    trace.attr(Field("n", 288));
    trace.close(idx, k * 100 + 10);
  }
  const int other = trace.open("et_solve", 500);
  trace.close(other, 600);

  EXPECT_EQ(trace.total_us("sparse_refactor"), 30);
  EXPECT_EQ(trace.total_us("et_solve"), 100);
  EXPECT_EQ(trace.total_us("absent"), 0);
  EXPECT_DOUBLE_EQ(trace.total_attr("sparse_refactor", "n"), 3 * 288.0);
  EXPECT_DOUBLE_EQ(trace.total_attr("sparse_refactor", "absent"), 0.0);
}

TEST(RequestTrace, TopSelfSubtractsDirectChildrenAndAggregates) {
  RequestTrace trace;
  // solve: dur 100 µs with a 60 µs child => 40 µs self. factor: 60 µs self.
  const int solve = trace.open("solve", 0);
  const int factor = trace.open("factor", 10);
  trace.close(factor, 70);
  trace.close(solve, 100);
  const auto top = trace.top_self();
  EXPECT_EQ(top.name, "factor");
  EXPECT_DOUBLE_EQ(top.self_ms, 0.06);

  // Repeated spans aggregate: two more 40 µs "solve" roots push it to 120 µs.
  for (int k = 0; k < 2; ++k) {
    const int again = trace.open("solve", 200 + k * 100);
    trace.close(again, 240 + k * 100);
  }
  EXPECT_EQ(trace.top_self().name, "solve");
  EXPECT_DOUBLE_EQ(trace.top_self().self_ms, 0.12);
}

TEST(RequestTrace, TopSelfTieBreaksByNameAndHandlesEmpty) {
  RequestTrace empty;
  EXPECT_EQ(empty.top_self().name, "");
  EXPECT_DOUBLE_EQ(empty.top_self().self_ms, 0.0);

  RequestTrace trace;
  const int b = trace.open("bbb", 0);
  trace.close(b, 50);
  const int a = trace.open("aaa", 100);
  trace.close(a, 150);
  EXPECT_EQ(trace.top_self().name, "aaa");  // equal 50 µs selves: name asc
}

TEST(RequestTrace, ToJsonRendersTreeParseableShape) {
  RequestTrace trace;
  const int outer = trace.open("svc.request", 1000);
  trace.attr(Field("method", "solve"));
  const int inner = trace.open("et_solve", 1100);
  trace.attr(Field("n", 288));
  trace.close(inner, 1250);
  trace.close(outer, 1500);

  const std::string json = trace.to_json("t-42");
  EXPECT_NE(json.find("\"trace_id\":\"t-42\""), std::string::npos);
  EXPECT_NE(json.find("\"span_count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"svc.request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"et_solve\""), std::string::npos);
  // start_us is relative to the first span.
  EXPECT_NE(json.find("\"start_us\":0"), std::string::npos);
  EXPECT_NE(json.find("\"start_us\":100"), std::string::npos);
  EXPECT_NE(json.find("\"method\":\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":288"), std::string::npos);
  // The child must be nested inside the outer span's "children".
  const auto children = json.find("\"children\":[");
  ASSERT_NE(children, std::string::npos);
  EXPECT_GT(json.find("\"name\":\"et_solve\""), children);
}

TEST(RequestContext, ScopedContextRoutesSpansIntoTrace) {
  TraceCollector::global().disable();  // request capture must not need it
  EXPECT_EQ(current_request_trace(), nullptr);
  EXPECT_EQ(current_trace_id(), "");

  RequestTrace trace;
  {
    ScopedRequestContext scope("req-7", &trace);
    EXPECT_EQ(current_request_trace(), &trace);
    EXPECT_EQ(current_trace_id(), "req-7");
    TFC_SPAN("outer");
    {
      TFC_SPAN("inner");
      TFC_SPAN_ATTR("iterations", 12);
    }
  }
  EXPECT_EQ(current_request_trace(), nullptr);

  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_STREQ(trace.spans()[0].name, "outer");
  EXPECT_STREQ(trace.spans()[1].name, "inner");
  EXPECT_EQ(trace.spans()[1].parent, 0);
  EXPECT_GE(trace.spans()[0].dur_us, trace.spans()[1].dur_us);
  ASSERT_EQ(trace.spans()[1].attrs.size(), 1u);
  EXPECT_EQ(trace.spans()[1].attrs[0].key, "iterations");
}

TEST(RequestContext, ScopesNestAndRestore) {
  RequestTrace outer_trace;
  RequestTrace inner_trace;
  {
    ScopedRequestContext outer("outer-id", &outer_trace);
    {
      ScopedRequestContext inner("inner-id", &inner_trace);
      EXPECT_EQ(current_trace_id(), "inner-id");
      TFC_SPAN("inner_only");
    }
    EXPECT_EQ(current_trace_id(), "outer-id");
    EXPECT_EQ(current_request_trace(), &outer_trace);
  }
  EXPECT_EQ(inner_trace.spans().size(), 1u);
  EXPECT_TRUE(outer_trace.empty());
}

TEST(RequestContext, SpanAttrIsNoOpOutsideContext) {
  EXPECT_EQ(current_request_trace(), nullptr);
  TFC_SPAN_ATTR("ignored", 1.0);  // must not crash or allocate a context
  EXPECT_EQ(current_request_trace(), nullptr);
}

TEST(RequestContext, OtherThreadsDoNotSeeTheContext) {
  RequestTrace trace;
  ScopedRequestContext scope("main-only", &trace);
  RequestTrace* seen = &trace;
  std::thread worker([&seen] { seen = current_request_trace(); });
  worker.join();
  EXPECT_EQ(seen, nullptr);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("svc.latency_ms"), "svc_latency_ms");
  EXPECT_EQ(prometheus_name("cg.solves"), "cg_solves");
  EXPECT_EQ(prometheus_name("9lives"), "_lives");  // leading digit
  EXPECT_EQ(prometheus_name("a-b c"), "a_b_c");
  EXPECT_EQ(prometheus_name(""), "_");
}

TEST(Prometheus, LabeledNameEscapesValues) {
  EXPECT_EQ(labeled_name("svc.latency_ms", {{"method", "solve"}}),
            "svc.latency_ms{method=\"solve\"}");
  EXPECT_EQ(labeled_name("m", {{"a", "x"}, {"b", "y"}}), "m{a=\"x\",b=\"y\"}");
  // Quotes, backslashes, and newlines in values are escaped per the text
  // format; bad label keys are sanitized.
  EXPECT_EQ(labeled_name("m", {{"k", "a\"b\\c\nd"}}),
            "m{k=\"a\\\"b\\\\c\\nd\"}");
  EXPECT_EQ(labeled_name("m", {{"bad key", "v"}}), "m{bad_key=\"v\"}");
  EXPECT_EQ(labeled_name("m", {}), "m");
}

TEST(Prometheus, CountersGetTotalSuffixAndType) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("svc.requests.received", 17);
  snap.counters.emplace_back("already_total", 3);
  const std::string text = to_prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE svc_requests_received_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_requests_received_total 17\n"), std::string::npos);
  // No double suffix.
  EXPECT_NE(text.find("already_total 3\n"), std::string::npos);
  EXPECT_EQ(text.find("already_total_total"), std::string::npos);
}

TEST(Prometheus, LabeledCountersShareOneTypeHeader) {
  MetricsSnapshot snap;
  snap.counters.emplace_back(labeled_name("req", {{"method", "a"}}), 1);
  snap.counters.emplace_back(labeled_name("req", {{"method", "b"}}), 2);
  const std::string text = to_prometheus_text(snap);
  std::size_t headers = 0;
  for (std::size_t pos = text.find("# TYPE req_total"); pos != std::string::npos;
       pos = text.find("# TYPE req_total", pos + 1)) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_NE(text.find("req_total{method=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{method=\"b\"} 2\n"), std::string::npos);
}

TEST(Prometheus, HistogramsEmitSummaryQuantilesSumCount) {
  HistogramSummary s;
  s.count = 4;
  s.sum = 100.0;
  s.p50 = 20.0;
  s.p95 = 45.0;
  s.p99 = 49.0;
  MetricsSnapshot snap;
  snap.histograms.emplace_back(labeled_name("svc.latency_ms", {{"method", "solve"}}), s);
  const std::string text = to_prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE svc_latency_ms summary\n"), std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms{method=\"solve\",quantile=\"0.5\"} 20\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms{method=\"solve\",quantile=\"0.95\"} 45\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms{method=\"solve\",quantile=\"0.99\"} 49\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms_sum{method=\"solve\"} 100\n"), std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms_count{method=\"solve\"} 4\n"), std::string::npos);
}

TEST(Prometheus, SummariesExposeExactMinMaxAsExtremeQuantiles) {
  // A tiny reservoir overflows immediately, so the percentiles are sampled —
  // but min/max are tracked exactly on every record and must surface as the
  // quantile="0"/"1" samples.
  Histogram h(4);
  for (int v = 1; v <= 1000; ++v) h.record(double(v));
  MetricsSnapshot snap;
  snap.histograms.emplace_back("lat_ms", h.summary());
  const std::string text = to_prometheus_text(snap);
  EXPECT_NE(text.find("lat_ms{quantile=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms{quantile=\"1\"} 1000\n"), std::string::npos);
  // Extremes bracket the interpolated percentiles in emission order.
  EXPECT_LT(text.find("quantile=\"0\""), text.find("quantile=\"0.5\""));
  EXPECT_LT(text.find("quantile=\"0.99\""), text.find("quantile=\"1\""));
}

TEST(Prometheus, LabeledSummariesKeepLabelsOnExtremeQuantiles) {
  HistogramSummary s;
  s.count = 2;
  s.min = 1.5;
  s.max = 9.5;
  MetricsSnapshot snap;
  snap.histograms.emplace_back(labeled_name("svc.latency_ms", {{"method", "solve"}}), s);
  const std::string text = to_prometheus_text(snap);
  EXPECT_NE(text.find("svc_latency_ms{method=\"solve\",quantile=\"0\"} 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_ms{method=\"solve\",quantile=\"1\"} 9.5\n"),
            std::string::npos);
}

TEST(Prometheus, GaugesAndNonFiniteValues) {
  MetricsSnapshot snap;
  snap.gauges.emplace_back("lambda_m", 1.25);
  snap.gauges.emplace_back("weird", std::nan(""));
  const std::string text = to_prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE lambda_m gauge\nlambda_m 1.25\n"), std::string::npos);
  EXPECT_NE(text.find("weird NaN\n"), std::string::npos);
}

TEST(Prometheus, FamiliesAreSortedDeterministically) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("zzz", 1);
  snap.counters.emplace_back("aaa", 2);
  const std::string text = to_prometheus_text(snap);
  EXPECT_LT(text.find("# TYPE aaa_total"), text.find("# TYPE zzz_total"));
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorder, RecentIsNewestFirst) {
  FlightRecorder rec(8);
  for (int k = 1; k <= 3; ++k) {
    RequestRecord r;
    r.method = std::to_string(k);
    rec.add(std::move(r));
  }
  const auto recent = rec.recent(10);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].method, "3");
  EXPECT_EQ(recent[0].seq, 3u);
  EXPECT_EQ(recent[2].method, "1");
  EXPECT_EQ(rec.total_added(), 3u);
}

TEST(FlightRecorder, RingOverwritesOldest) {
  FlightRecorder rec(4);
  for (int k = 1; k <= 10; ++k) {
    RequestRecord r;
    r.latency_ms = double(k);
    rec.add(std::move(r));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_added(), 10u);
  const auto recent = rec.recent(100);
  ASSERT_EQ(recent.size(), 4u);
  // Newest first: 10, 9, 8, 7.
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(recent[std::size_t(k)].latency_ms, double(10 - k));
    EXPECT_EQ(recent[std::size_t(k)].seq, std::uint64_t(10 - k));
  }
}

TEST(FlightRecorder, LimitTruncates) {
  FlightRecorder rec(8);
  for (int k = 0; k < 5; ++k) rec.add(RequestRecord{});
  EXPECT_EQ(rec.recent(2).size(), 2u);
  EXPECT_EQ(rec.recent(0).size(), 0u);
}

TEST(FlightRecorder, ConcurrentAddsKeepUniqueSeqs) {
  FlightRecorder rec(64);
  constexpr int kThreads = 4, kAdds = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec] {
      for (int k = 0; k < kAdds; ++k) rec.add(RequestRecord{});
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(rec.total_added(), std::uint64_t(kThreads) * kAdds);
  const auto recent = rec.recent(64);
  ASSERT_EQ(recent.size(), 64u);
  for (std::size_t k = 1; k < recent.size(); ++k) {
    EXPECT_EQ(recent[k].seq, recent[k - 1].seq - 1);
  }
}

// ---------------------------------------------------------------------------
// Histogram reservoir past capacity + windowed reset semantics

TEST(Metrics, ReservoirPastCapacityKeepsExactCountSumAndTolerablePercentiles) {
  Histogram h(256);
  const int n = 50000;
  double sum = 0.0;
  for (int v = 1; v <= n; ++v) {
    h.record(double(v));
    sum += double(v);
  }
  const auto s = h.summary();
  // count/sum/min/max/mean are exact regardless of sampling.
  EXPECT_EQ(s.count, std::uint64_t(n));
  EXPECT_DOUBLE_EQ(s.sum, sum);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, double(n));
  EXPECT_DOUBLE_EQ(s.mean, sum / n);
  // Percentiles come from a 256-sample uniform reservoir: for a uniform
  // stream the p-th sample quantile concentrates around p with standard
  // error sqrt(p(1-p)/256) ≈ 0.031 at the median — 15 points is > 4σ.
  EXPECT_NEAR(s.p50 / double(n), 0.50, 0.15);
  EXPECT_NEAR(s.p95 / double(n), 0.95, 0.10);
  EXPECT_NEAR(s.p99 / double(n), 0.99, 0.10);
}

TEST(Metrics, CounterExchangeReset) {
  Counter c;
  c.increment(5);
  EXPECT_EQ(c.exchange_reset(), 5u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(c.exchange_reset(), 0u);
}

TEST(Metrics, SummaryAndResetStartsAFreshWindow) {
  Histogram h;
  h.record(1.0);
  h.record(3.0);
  const auto first = h.summary_and_reset();
  EXPECT_EQ(first.count, 2u);
  EXPECT_DOUBLE_EQ(first.sum, 4.0);
  const auto empty = h.summary();
  EXPECT_EQ(empty.count, 0u);
  h.record(10.0);
  const auto second = h.summary_and_reset();
  EXPECT_EQ(second.count, 1u);
  EXPECT_DOUBLE_EQ(second.sum, 10.0);
  EXPECT_DOUBLE_EQ(second.min, 10.0);
}

TEST(Metrics, SnapshotAndResetCountsEverySampleInExactlyOneWindow) {
  // The satellite fix: export+reset is atomic per metric, so concurrent
  // increments/records can never be dropped between a separate snapshot and
  // reset, nor double-counted across windows.
  MetricsRegistry reg;
  reg.counter("events");
  reg.histogram("values");
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> produced{0};

  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int k = 0; k < 50000; ++k) {
        reg.counter("events").increment();
        reg.histogram("values").record(1.0);
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::uint64_t window_events = 0;
  std::uint64_t window_hist_count = 0;
  double window_hist_sum = 0.0;
  std::thread exporter([&] {
    while (!done.load()) {
      const MetricsSnapshot snap = reg.snapshot_and_reset();
      for (const auto& [name, value] : snap.counters) {
        if (name == "events") window_events += value;
      }
      for (const auto& [name, s] : snap.histograms) {
        if (name == "values") {
          window_hist_count += s.count;
          window_hist_sum += s.sum;
        }
      }
    }
  });

  for (auto& p : producers) p.join();
  done.store(true);
  exporter.join();
  // Pick up whatever landed after the exporter's last window.
  const MetricsSnapshot tail = reg.snapshot_and_reset();
  for (const auto& [name, value] : tail.counters) {
    if (name == "events") window_events += value;
  }
  for (const auto& [name, s] : tail.histograms) {
    if (name == "values") {
      window_hist_count += s.count;
      window_hist_sum += s.sum;
    }
  }

  EXPECT_EQ(window_events, produced.load());
  EXPECT_EQ(window_hist_count, produced.load());
  EXPECT_DOUBLE_EQ(window_hist_sum, double(produced.load()));
}

TEST(Metrics, SnapshotToJsonEscapesLabeledNames) {
  MetricsRegistry reg;
  reg.counter(labeled_name("req", {{"method", "solve"}})).increment(2);
  reg.histogram(labeled_name("lat", {{"method", "ping"}})).record(1.0);
  const std::string json = MetricsRegistry::snapshot_to_json(reg.snapshot());
  // The label block's quotes must be escaped so the document stays valid.
  EXPECT_NE(json.find("req{method=\\\"solve\\\"}"), std::string::npos);
  EXPECT_NE(json.find("lat{method=\\\"ping\\\"}"), std::string::npos);
  EXPECT_EQ(json.find("method=\"solve\""), std::string::npos);
}

TEST(Metrics, ProcessRssBytesIsPositiveOnLinux) {
#ifdef __linux__
  EXPECT_GT(process_rss_bytes(), 0u);
#else
  GTEST_SKIP() << "no /proc on this platform";
#endif
}

}  // namespace
}  // namespace tfc::obs
