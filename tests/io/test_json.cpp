#include "io/json.h"

#include <gtest/gtest.h>

namespace tfc::io {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(parse_json(R"("hi")").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const auto doc = parse_json(R"({"a": [1, 2, {"b": null}], "c": {"d": "e"}})");
  EXPECT_EQ(doc.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(doc.at("a").as_array()[2].at("b").is_null());
  EXPECT_EQ(doc.at("c").at("d").as_string(), "e");
}

TEST(Json, EscapesSurviveRoundTrip) {
  JsonValue obj = JsonValue::make_object();
  obj.set("text", JsonValue::make_string("line\n\ttab \"quoted\" back\\slash"));
  obj.set("unicode", JsonValue::make_string("\xC3\xA9"));  // é as UTF-8
  const auto parsed = parse_json(obj.dump());
  EXPECT_EQ(parsed.at("text").as_string(), "line\n\ttab \"quoted\" back\\slash");
  EXPECT_EQ(parsed.at("unicode").as_string(), "\xC3\xA9");
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(parse_json("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").as_string(), "\xC3\xA9");      // é
  EXPECT_EQ(parse_json("\"\\u20AC\"").as_string(), "\xE2\x82\xAC");  // €
  EXPECT_THROW(parse_json("\"\\u12g4\""), JsonParseError);
  EXPECT_THROW(parse_json("\"\\u12\""), JsonParseError);
}

TEST(Json, NumbersDumpCompactly) {
  EXPECT_EQ(parse_json("3").dump(), "3");
  EXPECT_EQ(parse_json("-17").dump(), "-17");
  EXPECT_EQ(parse_json("0.5").dump(), "0.5");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::make_object();
  obj.set("z", JsonValue::make_number(1));
  obj.set("a", JsonValue::make_number(2));
  obj.set("m", JsonValue::make_number(3));
  EXPECT_EQ(obj.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, ParseErrorsCarryOffsets) {
  try {
    parse_json(R"({"a": })");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 6u);
  }
  try {
    parse_json("[1, 2");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GE(e.offset(), 5u);
  }
}

TEST(Json, RejectsGarbage) {
  EXPECT_THROW(parse_json(""), JsonParseError);
  EXPECT_THROW(parse_json("nul"), JsonParseError);
  EXPECT_THROW(parse_json("{'a': 1}"), JsonParseError);       // single quotes
  EXPECT_THROW(parse_json("{\"a\": 1,}"), JsonParseError);    // trailing comma
  EXPECT_THROW(parse_json("[1] []"), JsonParseError);         // trailing tokens
  EXPECT_THROW(parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW(parse_json("1e999999"), JsonParseError);       // overflow
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(parse_json(deep), JsonParseError);
}

TEST(Json, TypeMismatchThrows) {
  const auto doc = parse_json(R"({"a": 1})");
  EXPECT_THROW((void)doc.at("a").as_string(), std::runtime_error);
  EXPECT_THROW((void)doc.at("missing"), std::runtime_error);
  EXPECT_EQ(doc.get("missing"), nullptr);
}

TEST(Json, DefaultedAccessors) {
  const auto doc = parse_json(R"({"n": 4, "s": "x", "b": true})");
  EXPECT_DOUBLE_EQ(doc.number_or("n", 9.0), 4.0);
  EXPECT_DOUBLE_EQ(doc.number_or("absent", 9.0), 9.0);
  EXPECT_EQ(doc.string_or("s", "y"), "x");
  EXPECT_EQ(doc.string_or("absent", "y"), "y");
  EXPECT_TRUE(doc.bool_or("b", false));
  EXPECT_FALSE(doc.bool_or("absent", false));
}

}  // namespace
}  // namespace tfc::io
