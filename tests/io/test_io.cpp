#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "io/csv.h"
#include "io/design_json.h"
#include "io/matrix_market.h"
#include "linalg/random_stieltjes.h"

namespace tfc::io {
namespace {

TEST(Csv, ColumnFormat) {
  std::ostringstream out;
  write_csv_column(out, "peak_c", linalg::Vector{1.5, 2.0});
  EXPECT_EQ(out.str(), "peak_c\n1.5\n2\n");
}

TEST(Csv, GridFormat) {
  std::ostringstream out;
  write_csv_grid(out, linalg::Vector{1.0, 2.0, 3.0, 4.0}, 2, 2);
  EXPECT_EQ(out.str(), "1,2\n3,4\n");
}

TEST(Csv, GridSizeMismatchThrows) {
  std::ostringstream out;
  EXPECT_THROW(write_csv_grid(out, linalg::Vector(3), 2, 2), std::invalid_argument);
}

TEST(Csv, TableFormat) {
  std::ostringstream out;
  write_csv_table(out, {"i", "peak"},
                  {linalg::Vector{0.0, 1.0}, linalg::Vector{90.0, 88.5}});
  EXPECT_EQ(out.str(), "i,peak\n0,90\n1,88.5\n");
}

TEST(Csv, TableValidation) {
  std::ostringstream out;
  EXPECT_THROW(write_csv_table(out, {"a"}, {}), std::invalid_argument);
  EXPECT_THROW(write_csv_table(out, {"a", "b"},
                               {linalg::Vector{1.0}, linalg::Vector{1.0, 2.0}}),
               std::invalid_argument);
}

TEST(MatrixMarket, RoundTripRandomStieltjes) {
  std::mt19937_64 rng(77);
  auto a = linalg::SparseMatrix::from_dense(linalg::random_pd_stieltjes(12, rng));
  std::stringstream buf;
  write_matrix_market(buf, a);
  auto b = read_matrix_market(buf);
  EXPECT_EQ(b.rows(), a.rows());
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_LT(b.to_dense().max_abs_diff(a.to_dense()), 1e-14);
}

TEST(MatrixMarket, SymmetricInputExpanded) {
  std::stringstream in;
  in << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "2 2 2\n"
     << "1 1 4.0\n"
     << "2 1 -1.0\n";
  auto a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(read_matrix_market(empty), std::runtime_error);

  std::stringstream bad_banner("%%MatrixMarket matrix array real general\n1 1 1\n");
  EXPECT_THROW(read_matrix_market(bad_banner), std::runtime_error);

  std::stringstream complex_field(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market(complex_field), std::runtime_error);

  std::stringstream out_of_range(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(out_of_range), std::runtime_error);

  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(truncated), std::runtime_error);
}

TEST(DesignJson, ContainsAllKeyFields) {
  core::DesignResult r;
  r.chip_name = "unit \"x\"";
  r.theta_limit_celsius = 85.0;
  r.success = true;
  r.tec_count = 3;
  r.current = 5.5;
  r.lambda_m = 120.0;
  r.deployment = TileMask(2, 2);
  r.deployment.set(0, 1);
  const std::string json = design_result_to_json(r);
  EXPECT_NE(json.find("\"chip\": \"unit \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"success\": true"), std::string::npos);
  EXPECT_NE(json.find("\"tec_count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"lambda_m_a\": 120"), std::string::npos);
  EXPECT_NE(json.find("\".#\""), std::string::npos);
}

TEST(DesignJson, NullLambdaWhenAbsent) {
  core::DesignResult r;
  r.deployment = TileMask(1, 1);
  const std::string json = design_result_to_json(r);
  EXPECT_NE(json.find("\"lambda_m_a\": null"), std::string::npos);
}

}  // namespace
}  // namespace tfc::io
