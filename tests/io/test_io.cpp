#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "io/csv.h"
#include "io/design_json.h"
#include "io/json.h"
#include "io/matrix_market.h"
#include "linalg/random_stieltjes.h"

namespace tfc::io {
namespace {

TEST(Csv, ColumnFormat) {
  std::ostringstream out;
  write_csv_column(out, "peak_c", linalg::Vector{1.5, 2.0});
  EXPECT_EQ(out.str(), "peak_c\n1.5\n2\n");
}

TEST(Csv, GridFormat) {
  std::ostringstream out;
  write_csv_grid(out, linalg::Vector{1.0, 2.0, 3.0, 4.0}, 2, 2);
  EXPECT_EQ(out.str(), "1,2\n3,4\n");
}

TEST(Csv, GridSizeMismatchThrows) {
  std::ostringstream out;
  EXPECT_THROW(write_csv_grid(out, linalg::Vector(3), 2, 2), std::invalid_argument);
}

TEST(Csv, TableFormat) {
  std::ostringstream out;
  write_csv_table(out, {"i", "peak"},
                  {linalg::Vector{0.0, 1.0}, linalg::Vector{90.0, 88.5}});
  EXPECT_EQ(out.str(), "i,peak\n0,90\n1,88.5\n");
}

TEST(Csv, TableValidation) {
  std::ostringstream out;
  EXPECT_THROW(write_csv_table(out, {"a"}, {}), std::invalid_argument);
  EXPECT_THROW(write_csv_table(out, {"a", "b"},
                               {linalg::Vector{1.0}, linalg::Vector{1.0, 2.0}}),
               std::invalid_argument);
}

TEST(MatrixMarket, RoundTripRandomStieltjes) {
  std::mt19937_64 rng(77);
  auto a = linalg::SparseMatrix::from_dense(linalg::random_pd_stieltjes(12, rng));
  std::stringstream buf;
  write_matrix_market(buf, a);
  auto b = read_matrix_market(buf);
  EXPECT_EQ(b.rows(), a.rows());
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_LT(b.to_dense().max_abs_diff(a.to_dense()), 1e-14);
}

TEST(MatrixMarket, SymmetricInputExpanded) {
  std::stringstream in;
  in << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "2 2 2\n"
     << "1 1 4.0\n"
     << "2 1 -1.0\n";
  auto a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(read_matrix_market(empty), std::runtime_error);

  std::stringstream bad_banner("%%MatrixMarket matrix array real general\n1 1 1\n");
  EXPECT_THROW(read_matrix_market(bad_banner), std::runtime_error);

  std::stringstream complex_field(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market(complex_field), std::runtime_error);

  std::stringstream out_of_range(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(out_of_range), std::runtime_error);

  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(truncated), std::runtime_error);
}

TEST(DesignJson, ContainsAllKeyFields) {
  core::DesignResult r;
  r.chip_name = "unit \"x\"";
  r.theta_limit_celsius = 85.0;
  r.success = true;
  r.tec_count = 3;
  r.current = 5.5;
  r.lambda_m = 120.0;
  r.deployment = TileMask(2, 2);
  r.deployment.set(0, 1);
  const std::string json = design_result_to_json(r);
  EXPECT_NE(json.find("\"chip\": \"unit \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"success\": true"), std::string::npos);
  EXPECT_NE(json.find("\"tec_count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"lambda_m_a\": 120"), std::string::npos);
  EXPECT_NE(json.find("\".#\""), std::string::npos);
}

TEST(DesignJson, NullLambdaWhenAbsent) {
  core::DesignResult r;
  r.deployment = TileMask(1, 1);
  const std::string json = design_result_to_json(r);
  EXPECT_NE(json.find("\"lambda_m_a\": null"), std::string::npos);
}

TEST(MatrixMarket, WriteReadPreservesPatternAndValues) {
  // A structured (non-random) pattern: 1-D Laplacian plus a far-off-diagonal
  // coupling, so pattern preservation is distinguishable from value luck.
  linalg::TripletList triplets(6, 6);
  for (std::size_t k = 0; k < 6; ++k) triplets.add(k, k, 2.0 + double(k) * 0.25);
  for (std::size_t k = 0; k + 1 < 6; ++k) triplets.add_symmetric(k, k + 1, -1.0);
  triplets.add_symmetric(0, 5, -0.125);
  auto a = linalg::SparseMatrix::from_triplets(triplets);

  std::stringstream buf;
  write_matrix_market(buf, a);
  auto b = read_matrix_market(buf);

  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (std::size_t row = 0; row < 6; ++row) {
    for (std::size_t col = 0; col < 6; ++col) {
      // Same sparsity pattern (exact zeros where a has no entry)...
      EXPECT_EQ(b.at(row, col) != 0.0, a.at(row, col) != 0.0)
          << "pattern differs at (" << row << "," << col << ")";
      // ...and bit-identical values where it does.
      EXPECT_DOUBLE_EQ(b.at(row, col), a.at(row, col));
    }
  }
}

TEST(DesignJson, RoundTripThroughParser) {
  core::DesignResult r;
  r.chip_name = "hc7";
  r.theta_limit_celsius = 85.0;
  r.success = true;
  r.peak_no_tec_celsius = 97.25;
  r.peak_greedy_celsius = 84.5;
  r.tec_count = 9;
  r.current = 4.75;
  r.tec_power = 11.5;
  r.lambda_m = 123.5;
  r.greedy_iterations = 17;
  r.swing_loss_celsius = 0.75;
  r.convexity = core::ConvexityCertificate{};
  r.convexity->certified = true;
  r.deployment = TileMask(3, 4);
  r.deployment.set(0, 1);
  r.deployment.set(2, 3);

  const auto back = design_result_from_json(design_result_to_json(r));
  EXPECT_EQ(back.chip_name, "hc7");
  EXPECT_TRUE(back.success);
  EXPECT_EQ(back.tec_count, 9u);
  EXPECT_DOUBLE_EQ(back.current, 4.75);
  ASSERT_TRUE(back.lambda_m.has_value());
  EXPECT_DOUBLE_EQ(*back.lambda_m, 123.5);
  ASSERT_TRUE(back.convexity.has_value());
  EXPECT_TRUE(back.convexity->certified);
  ASSERT_EQ(back.deployment.rows(), 3u);
  ASSERT_EQ(back.deployment.cols(), 4u);
  EXPECT_EQ(back.deployment.count(), 2u);
  EXPECT_TRUE(back.deployment.test(0, 1));
  EXPECT_TRUE(back.deployment.test(2, 3));

  // Null lambda stays absent through the round trip.
  core::DesignResult no_lambda;
  no_lambda.deployment = TileMask(1, 1);
  EXPECT_FALSE(design_result_from_json(design_result_to_json(no_lambda))
                   .lambda_m.has_value());
}

TEST(DesignJson, RejectsTruncatedAndGarbageInput) {
  core::DesignResult r;
  r.deployment = TileMask(2, 2);
  const std::string good = design_result_to_json(r);

  // Truncation at any structural point is a parse error, not a crash.
  EXPECT_THROW((void)design_result_from_json(good.substr(0, good.size() / 2)),
               JsonParseError);
  EXPECT_THROW((void)design_result_from_json(good.substr(0, 1)), JsonParseError);
  EXPECT_THROW((void)design_result_from_json(""), JsonParseError);
  EXPECT_THROW((void)design_result_from_json("not json at all"), JsonParseError);

  // Valid JSON of the wrong shape fails with a structural error.
  EXPECT_THROW((void)design_result_from_json("[1, 2, 3]"), std::runtime_error);
  EXPECT_THROW((void)design_result_from_json("{}"), std::runtime_error);
  EXPECT_THROW((void)design_result_from_json(R"({"chip": 42})"), std::runtime_error);

  // Structurally bad deployment grids are named specifically.
  const auto with_deployment = [&](const std::string& rows_json) {
    std::string doc = good;
    const auto pos = doc.find("\"deployment\": [");
    return doc.substr(0, pos) + "\"deployment\": " + rows_json + "\n}";
  };
  try {
    (void)design_result_from_json(with_deployment(R"(["..", "."])"));
    FAIL() << "expected ragged-rows error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ragged"), std::string::npos);
  }
  try {
    (void)design_result_from_json(with_deployment(R"(["..", "#x"])"));
    FAIL() << "expected bad-cell error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'#'/'.'"), std::string::npos);
  }
}

}  // namespace
}  // namespace tfc::io
