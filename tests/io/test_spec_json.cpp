/// StackSpec JSON: canonical round-trip, strict-schema rejection, typed
/// error messages, file loading, and content-hash stability.
#include "io/spec_json.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "thermal/stack_spec.h"

namespace tfc::io {
namespace {

thermal::StackSpec default_spec() {
  return thermal::StackSpec::single_die(thermal::PackageGeometry{});
}

std::string temp_spec_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("tfc_spec_" + tag + "_" + std::to_string(::getpid()) + ".json"))
      .string();
}

/// RAII temp file holding one JSON document.
class TempSpecFile {
 public:
  TempSpecFile(const std::string& tag, const std::string& content)
      : path_(temp_spec_path(tag)) {
    std::ofstream f(path_);
    f << content;
  }
  ~TempSpecFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SpecJson, CanonicalRoundTripIsExact) {
  thermal::StackSpec spec = default_spec();
  JsonValue doc = spec_to_json(spec);
  thermal::StackSpec back = spec_from_json(doc);
  // Bitwise round-trip: the re-serialized document is byte-identical.
  EXPECT_EQ(spec_to_json(back).dump(), doc.dump());
  EXPECT_EQ(spec_content_hash(back), spec_content_hash(spec));
  EXPECT_TRUE(back.paper_equivalent());
}

TEST(SpecJson, UnknownTopLevelKeyRejected) {
  JsonValue doc = spec_to_json(default_spec());
  doc.set("bogus", JsonValue::make_number(1.0));
  EXPECT_THROW(
      try { spec_from_json(doc); } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("unknown key 'bogus'"), std::string::npos);
        throw;
      },
      std::invalid_argument);
}

TEST(SpecJson, UnknownMaterialRejected) {
  TempSpecFile f("badmat", R"({
    "name": "m",
    "chips": [{
      "name": "c", "width": 0.006, "height": 0.006, "x": 0, "y": 0,
      "tile_rows": 4, "tile_cols": 4,
      "layers": [
        {"kind": "die", "name": "die", "material": "unobtainium",
         "thickness": 0.0003, "power_w": 10},
        {"kind": "interface", "name": "tim", "material": "TIM",
         "thickness": 5e-05, "tec_capable": true}
      ]
    }]
  })");
  EXPECT_THROW(
      try { load_stack_spec(f.path()); } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("unknown material"), std::string::npos);
        throw;
      },
      std::invalid_argument);
}

TEST(SpecJson, ZeroThicknessRejectedOnLoad) {
  TempSpecFile f("zerothick", R"({
    "name": "z",
    "chips": [{
      "name": "c", "width": 0.006, "height": 0.006, "x": 0, "y": 0,
      "tile_rows": 4, "tile_cols": 4,
      "layers": [
        {"kind": "die", "name": "die", "material": "silicon",
         "thickness": 0, "power_w": 10},
        {"kind": "interface", "name": "tim", "material": "TIM",
         "thickness": 5e-05, "tec_capable": true}
      ]
    }]
  })");
  EXPECT_THROW(
      try { load_stack_spec(f.path()); } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("thickness must be > 0"), std::string::npos);
        throw;
      },
      std::invalid_argument);
}

TEST(SpecJson, MissingFileThrowsRuntimeError) {
  EXPECT_THROW(load_stack_spec("/nonexistent/package.json"), std::runtime_error);
}

TEST(SpecJson, HashDiscriminatesContent) {
  thermal::StackSpec a = default_spec();
  thermal::StackSpec b = default_spec();
  b.chips[0].layers[0].power_w += 1.0;
  thermal::StackSpec c = default_spec();
  c.convection_resistance = 1.05;
  EXPECT_NE(spec_content_hash(a), spec_content_hash(b));
  EXPECT_NE(spec_content_hash(a), spec_content_hash(c));
  EXPECT_NE(spec_content_hash(b), spec_content_hash(c));
  EXPECT_EQ(spec_content_hash(a).size(), 16u);
}

TEST(SpecJson, LoadValidatesEndToEnd) {
  // A syntactically fine document whose chips overlap must fail validate()
  // inside load_stack_spec, not only at model build time.
  thermal::StackSpec s = default_spec();
  s.chips.push_back(s.chips[0]);  // identical footprint ⇒ overlap
  TempSpecFile f("overlap", spec_to_json(s).dump());
  EXPECT_THROW(
      try { load_stack_spec(f.path()); } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("overlap"), std::string::npos);
        throw;
      },
      std::invalid_argument);
}

}  // namespace
}  // namespace tfc::io
