#include "linalg/properties.h"

#include <gtest/gtest.h>

#include <random>

#include "linalg/cholesky.h"
#include "linalg/random_stieltjes.h"
#include "linalg/sparse_matrix.h"

namespace tfc::linalg {
namespace {

TEST(Properties, SymmetryDense) {
  DenseMatrix a{{1.0, 2.0}, {2.0, 3.0}};
  EXPECT_TRUE(is_symmetric(a));
  a(0, 1) = 2.5;
  EXPECT_FALSE(is_symmetric(a));
  EXPECT_TRUE(is_symmetric(a, 0.6));
}

TEST(Properties, StieltjesDense) {
  DenseMatrix a{{2.0, -1.0}, {-1.0, 2.0}};
  EXPECT_TRUE(is_stieltjes(a));
  a(0, 1) = a(1, 0) = 0.5;  // positive off-diagonal
  EXPECT_FALSE(is_stieltjes(a));
}

TEST(Properties, StieltjesSparse) {
  TripletList t(2, 2);
  t.add_symmetric(0, 1, -1.0);
  t.add(0, 0, 2.0);
  t.add(1, 1, 2.0);
  EXPECT_TRUE(is_stieltjes(SparseMatrix::from_triplets(t)));
  TripletList t2(2, 2);
  t2.add_symmetric(0, 1, 1.0);
  t2.add(0, 0, 2.0);
  t2.add(1, 1, 2.0);
  EXPECT_FALSE(is_stieltjes(SparseMatrix::from_triplets(t2)));
}

TEST(Properties, IrreducibilityDense) {
  // Block-diagonal (direct sum) matrix is reducible (Definition 1).
  DenseMatrix reducible{{2.0, 0.0}, {0.0, 2.0}};
  EXPECT_FALSE(is_irreducible(reducible));
  DenseMatrix irreducible{{2.0, -1.0}, {-1.0, 2.0}};
  EXPECT_TRUE(is_irreducible(irreducible));
  DenseMatrix one{{5.0}};
  EXPECT_TRUE(is_irreducible(one));
}

TEST(Properties, IrreducibilitySparseChain) {
  TripletList t(4, 4);
  for (std::size_t i = 0; i + 1 < 4; ++i) t.add_symmetric(i, i + 1, -1.0);
  for (std::size_t i = 0; i < 4; ++i) t.add(i, i, 3.0);
  EXPECT_TRUE(is_irreducible(SparseMatrix::from_triplets(t)));

  TripletList t2(4, 4);
  t2.add_symmetric(0, 1, -1.0);
  t2.add_symmetric(2, 3, -1.0);
  for (std::size_t i = 0; i < 4; ++i) t2.add(i, i, 3.0);
  EXPECT_FALSE(is_irreducible(SparseMatrix::from_triplets(t2)));
}

TEST(Properties, DiagonalDominance) {
  DenseMatrix strong{{3.0, -1.0}, {-1.0, 3.0}};
  EXPECT_TRUE(is_diagonally_dominant(strong));
  DenseMatrix weak{{1.0, -1.0}, {-1.0, 1.0}};
  EXPECT_TRUE(is_diagonally_dominant(weak));
  DenseMatrix fails{{0.5, -1.0}, {-1.0, 3.0}};
  EXPECT_FALSE(is_diagonally_dominant(fails));
}

TEST(Properties, IrreduciblyDiagonallyDominant) {
  // Grounded chain: weakly dominant everywhere, strict at the grounded end.
  TripletList t(3, 3);
  t.add_symmetric(0, 1, -1.0);
  t.add_symmetric(1, 2, -1.0);
  t.add(0, 0, 1.5);  // grounded
  t.add(1, 1, 2.0);
  t.add(2, 2, 1.0);
  auto a = SparseMatrix::from_triplets(t);
  EXPECT_TRUE(is_irreducibly_diagonally_dominant(a));
  // Such matrices are positive definite.
  EXPECT_TRUE(is_positive_definite(a.to_dense()));

  // Pure Neumann Laplacian: weakly dominant everywhere, no strict row.
  TripletList t2(2, 2);
  t2.add_symmetric(0, 1, -1.0);
  t2.add(0, 0, 1.0);
  t2.add(1, 1, 1.0);
  EXPECT_FALSE(is_irreducibly_diagonally_dominant(SparseMatrix::from_triplets(t2)));
}

TEST(Properties, Nonnegativity) {
  DenseMatrix a{{1.0, 0.0}, {0.5, 2.0}};
  EXPECT_TRUE(is_nonnegative(a));
  a(1, 0) = -1e-3;
  EXPECT_FALSE(is_nonnegative(a));
  EXPECT_TRUE(is_nonnegative(a, 1e-2));
  EXPECT_DOUBLE_EQ(min_matrix_entry(a), -1e-3);
}

// Paper Lemma 1 direction: every generated random PD Stieltjes matrix must
// actually satisfy all three structural claims.
class StieltjesGeneratorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StieltjesGeneratorSweep, GeneratorOutputsAreIrreduciblePdStieltjes) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(500 + n);
  for (int rep = 0; rep < 5; ++rep) {
    DenseMatrix a = random_pd_stieltjes(n, rng);
    EXPECT_TRUE(is_stieltjes(a));
    EXPECT_TRUE(is_irreducible(a));
    EXPECT_TRUE(is_positive_definite(a));
    EXPECT_TRUE(is_diagonally_dominant(a));
  }
}

TEST_P(StieltjesGeneratorSweep, GroundedLaplacianIsPdStieltjes) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(900 + n);
  for (int rep = 0; rep < 5; ++rep) {
    DenseMatrix a = random_grounded_laplacian(n, std::max<std::size_t>(1, n / 4), rng);
    EXPECT_TRUE(is_stieltjes(a));
    EXPECT_TRUE(is_irreducible(a));
    // Grounded + irreducible ⇒ PD even though dominance is mostly weak.
    EXPECT_TRUE(is_positive_definite(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StieltjesGeneratorSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(RandomStieltjes, InvalidArgsThrow) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(random_pd_stieltjes(0, rng), std::invalid_argument);
  RandomStieltjesOptions bad;
  bad.min_shift = -1.0;
  EXPECT_THROW(random_pd_stieltjes(3, rng, bad), std::invalid_argument);
  EXPECT_THROW(random_grounded_laplacian(3, 0, rng), std::invalid_argument);
  EXPECT_THROW(random_grounded_laplacian(3, 4, rng), std::invalid_argument);
}

TEST(RandomStieltjes, DeterministicForFixedSeed) {
  std::mt19937_64 rng1(77), rng2(77);
  DenseMatrix a = random_pd_stieltjes(10, rng1);
  DenseMatrix b = random_pd_stieltjes(10, rng2);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
}

}  // namespace
}  // namespace tfc::linalg
