#include <gtest/gtest.h>

#include <random>

#include "linalg/eigen.h"
#include "linalg/random_stieltjes.h"

namespace tfc::linalg {
namespace {

TEST(ConditionEstimate, ExactForDiagonal) {
  auto a = DenseMatrix::diagonal(Vector{10.0, 2.0, 0.5});
  auto k = spd_condition_estimate(a);
  ASSERT_TRUE(k.has_value());
  EXPECT_NEAR(*k, 20.0, 1e-6 * 20.0);
}

TEST(ConditionEstimate, IdentityIsPerfectlyConditioned) {
  auto k = spd_condition_estimate(DenseMatrix::identity(8));
  ASSERT_TRUE(k.has_value());
  EXPECT_NEAR(*k, 1.0, 1e-8);
}

TEST(ConditionEstimate, NulloptForIndefinite) {
  DenseMatrix a{{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_FALSE(spd_condition_estimate(a).has_value());
}

TEST(ConditionEstimate, MatchesJacobiSpectrumOnRandomStieltjes) {
  std::mt19937_64 rng(9);
  DenseMatrix a = random_pd_stieltjes(12, rng);
  auto k = spd_condition_estimate(a);
  ASSERT_TRUE(k.has_value());
  auto ev = jacobi_eigenvalues(a);
  const double exact = ev.back() / ev.front();
  EXPECT_NEAR(*k, exact, 0.02 * exact);
}

TEST(ConditionEstimate, BlowsUpApproachingSingularity) {
  // G − λD nears singularity as λ → λ_m: conditioning must explode, which is
  // why the optimizer caps its search strictly inside [0, λ_m).
  auto g = DenseMatrix::diagonal(Vector{2.0, 6.0});
  g(0, 1) = g(1, 0) = -0.5;
  auto d = DenseMatrix::diagonal(Vector{1.0, 0.0});
  auto lm = pencil_smallest_positive_eigenvalue(g, d);
  ASSERT_TRUE(lm.has_value());
  DenseMatrix far = g;
  far -= d * (0.5 * *lm);
  DenseMatrix near = g;
  near -= d * (0.9999 * *lm);
  auto k_far = spd_condition_estimate(far);
  auto k_near = spd_condition_estimate(near);
  ASSERT_TRUE(k_far && k_near);
  EXPECT_GT(*k_near, 100.0 * *k_far);
}

}  // namespace
}  // namespace tfc::linalg
