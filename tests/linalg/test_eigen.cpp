#include "linalg/eigen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/cholesky.h"
#include "linalg/random_stieltjes.h"

namespace tfc::linalg {
namespace {

TEST(JacobiEigen, DiagonalMatrix) {
  auto a = DenseMatrix::diagonal(Vector{3.0, -1.0, 2.0});
  auto ev = jacobi_eigenvalues(a);
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_NEAR(ev[0], -1.0, 1e-12);
  EXPECT_NEAR(ev[1], 2.0, 1e-12);
  EXPECT_NEAR(ev[2], 3.0, 1e-12);
}

TEST(JacobiEigen, Known2x2) {
  DenseMatrix a{{2.0, 1.0}, {1.0, 2.0}};  // eigenvalues 1 and 3
  auto ev = jacobi_eigenvalues(a);
  EXPECT_NEAR(ev[0], 1.0, 1e-12);
  EXPECT_NEAR(ev[1], 3.0, 1e-12);
}

TEST(JacobiEigen, TraceAndDeterminantInvariants) {
  std::mt19937_64 rng(31);
  DenseMatrix a = random_pd_stieltjes(10, rng);
  auto ev = jacobi_eigenvalues(a);
  double trace = 0.0;
  for (std::size_t i = 0; i < 10; ++i) trace += a(i, i);
  double ev_sum = 0.0, ev_logprod = 0.0;
  for (double e : ev) {
    ev_sum += e;
    ev_logprod += std::log(e);
  }
  EXPECT_NEAR(ev_sum, trace, 1e-9 * std::abs(trace));
  EXPECT_NEAR(ev_logprod, CholeskyFactor::factor(a)->log_det(), 1e-8);
}

TEST(JacobiEigen, AllPositiveForPdMatrix) {
  std::mt19937_64 rng(32);
  DenseMatrix a = random_pd_stieltjes(12, rng);
  for (double e : jacobi_eigenvalues(a)) EXPECT_GT(e, 0.0);
}

TEST(PowerIteration, FindsDominantEigenvalue) {
  DenseMatrix a{{2.0, 1.0}, {1.0, 2.0}};
  auto r = power_iteration(a);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 3.0, 1e-8);
  // Eigenvector is (1,1)/√2 up to sign.
  EXPECT_NEAR(std::abs(r.eigenvector[0]), std::abs(r.eigenvector[1]), 1e-6);
}

TEST(PowerIteration, ZeroMatrix) {
  DenseMatrix a(3, 3);
  auto r = power_iteration(a);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 0.0, 1e-12);
}

TEST(PencilBisection, DiagonalPencilExactAnswer) {
  // G = diag(2, 6), D = diag(1, 2): G - λD loses PD at λ = min(2, 3) = 2.
  auto g = DenseMatrix::diagonal(Vector{2.0, 6.0});
  auto d = DenseMatrix::diagonal(Vector{1.0, 2.0});
  auto lm = pencil_smallest_positive_eigenvalue(g, d);
  ASSERT_TRUE(lm.has_value());
  EXPECT_NEAR(*lm, 2.0, 1e-8);
}

TEST(PencilBisection, IndefiniteDirectionIgnored) {
  // D = diag(1, -5): only the positive direction matters; λm = 2.
  auto g = DenseMatrix::diagonal(Vector{2.0, 6.0});
  auto d = DenseMatrix::diagonal(Vector{1.0, -5.0});
  auto lm = pencil_smallest_positive_eigenvalue(g, d);
  ASSERT_TRUE(lm.has_value());
  EXPECT_NEAR(*lm, 2.0, 1e-8);
}

TEST(PencilBisection, NoPositiveDirectionGivesNullopt) {
  auto g = DenseMatrix::diagonal(Vector{2.0, 6.0});
  auto d = DenseMatrix::diagonal(Vector{-1.0, -2.0});
  EXPECT_FALSE(pencil_smallest_positive_eigenvalue(g, d).has_value());
}

TEST(PencilBisection, ZeroDGivesNullopt) {
  auto g = DenseMatrix::identity(3);
  DenseMatrix d(3, 3);
  EXPECT_FALSE(pencil_smallest_positive_eigenvalue(g, d).has_value());
}

TEST(PencilBisection, RequiresPdG) {
  DenseMatrix g{{1.0, 2.0}, {2.0, 1.0}};
  auto d = DenseMatrix::identity(2);
  EXPECT_THROW(pencil_smallest_positive_eigenvalue(g, d), std::invalid_argument);
}

TEST(PencilBisection, MatchesVariationalDefinition) {
  // λm = min θᵀGθ subject to θᵀDθ = 1 (Theorem 1). For diagonal matrices the
  // minimum is min_i g_i/d_i over positive d_i.
  auto g = DenseMatrix::diagonal(Vector{5.0, 8.0, 3.0, 10.0});
  auto d = DenseMatrix::diagonal(Vector{1.0, 4.0, 0.0, -2.0});
  auto lm = pencil_smallest_positive_eigenvalue(g, d);
  ASSERT_TRUE(lm.has_value());
  EXPECT_NEAR(*lm, 2.0, 1e-8);  // 8/4 = 2 beats 5/1
}

TEST(PencilBisection, GeneralPencilCrossCheckedWithEigenDecomposition) {
  // For SPD G and symmetric D, λm is the reciprocal of the largest eigenvalue
  // of L⁻¹ D L⁻ᵀ where G = L Lᵀ.
  std::mt19937_64 rng(101);
  DenseMatrix g = random_pd_stieltjes(8, rng);
  Vector dd(8);
  dd[1] = 0.4;
  dd[5] = 0.9;
  dd[6] = -0.7;
  auto d = DenseMatrix::diagonal(dd);

  auto lm = pencil_smallest_positive_eigenvalue(g, d);
  ASSERT_TRUE(lm.has_value());

  auto f = CholeskyFactor::factor(g);
  ASSERT_TRUE(f.has_value());
  // Build C = L⁻¹ D L⁻ᵀ via solves: columns of L⁻ᵀ.
  const std::size_t n = 8;
  DenseMatrix c(n, n);
  // First compute X = L⁻¹ D (solve L X = D column-wise), then C = X L⁻ᵀ.
  // Simpler: C_ij = e_iᵀ L⁻¹ D L⁻ᵀ e_j; compute Y = L⁻ᵀ (inverse transpose
  // columns) by solving Lᵀ y = e_j via full solve with G then multiplying by L...
  // Cheapest correct route: C = L⁻¹ D L⁻ᵀ with explicit dense inverse of L.
  DenseMatrix linv(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    // forward solve L x = e_j
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) {
      double s = (i == j) ? 1.0 : 0.0;
      for (std::size_t k = 0; k < i; ++k) s -= f->l()(i, k) * x[k];
      x[i] = s / f->l()(i, i);
    }
    for (std::size_t i = 0; i < n; ++i) linv(i, j) = x[i];
  }
  c = linv * d * linv.transposed();
  auto ev = jacobi_eigenvalues(c);
  const double mu_max = ev.back();
  ASSERT_GT(mu_max, 0.0);
  EXPECT_NEAR(*lm, 1.0 / mu_max, 1e-6 / mu_max);
}

}  // namespace
}  // namespace tfc::linalg
