/// Property tests of the sparse shift-invert Lanczos eigensolver against the
/// dense pencil-bisection oracle, over random Stieltjes matrices (the
/// paper's own validation family), sizes, shifts — including a near-singular
/// K = G − σD and a deliberately bad shift that must re-shift or throw.
#include "linalg/lanczos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "linalg/dense_matrix.h"
#include "linalg/eigen.h"
#include "linalg/random_stieltjes.h"
#include "linalg/sparse_matrix.h"

namespace tfc::linalg {
namespace {

/// TEC-like diagonal: +mag on `pos` rows, −mag on `neg` rows, 0 elsewhere —
/// exactly the ±α support pattern of the Peltier matrix D.
Vector tec_like_diagonal(std::size_t n, std::size_t pos, std::size_t neg,
                         std::mt19937_64& rng, double mag = 1.0) {
  Vector d(n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::shuffle(idx.begin(), idx.end(), rng);
  std::uniform_real_distribution<double> u(0.5 * mag, mag);
  std::size_t k = 0;
  for (std::size_t i = 0; i < pos && k < n; ++i, ++k) d[idx[k]] = u(rng);
  for (std::size_t i = 0; i < neg && k < n; ++i, ++k) d[idx[k]] = -u(rng);
  return d;
}

std::optional<double> dense_oracle(const DenseMatrix& g, const Vector& d) {
  PencilBisectionOptions opts;
  opts.rel_tol = 1e-12;
  return pencil_smallest_positive_eigenvalue(g, DenseMatrix::diagonal(d), opts);
}

std::size_t nnz_of(const Vector& d) {
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < d.size(); ++i) nnz += d[i] != 0.0 ? 1 : 0;
  return nnz;
}

TEST(ShiftInvertLanczos, AgreesWithDenseOracleAcrossSizesAndSeeds) {
  for (std::size_t n : {4u, 8u, 20u, 40u, 80u}) {
    for (std::uint64_t seed : {1u, 7u, 42u}) {
      std::mt19937_64 rng(seed * 1000 + n);
      const DenseMatrix gd = random_pd_stieltjes(n, rng);
      const Vector d =
          tec_like_diagonal(n, std::max<std::size_t>(1, n / 4), n / 5, rng);
      const SparseMatrix g = SparseMatrix::from_dense(gd);

      const auto oracle = dense_oracle(gd, d);
      const auto sparse = ShiftInvertLanczos::smallest_positive(g, d);
      ASSERT_TRUE(oracle.has_value()) << "n=" << n << " seed=" << seed;
      ASSERT_TRUE(sparse.has_value()) << "n=" << n << " seed=" << seed;
      EXPECT_NEAR(sparse->eigenvalue, *oracle, 1e-8 * *oracle)
          << "n=" << n << " seed=" << seed;
      // Certified: the result carries its own residual proof.
      EXPECT_LE(sparse->rel_residual, 1e-9);
      // Krylov exhaustion bound: rank(K⁻¹D) ≤ nnz(d).
      EXPECT_LE(sparse->iterations, nnz_of(d) + 1);
    }
  }
}

TEST(ShiftInvertLanczos, GroundedLaplacianFamily) {
  // Weakly dominant Laplacians with few grounded rows — the exact structure
  // of the thermal G, the hardest PD family the repo generates.
  for (std::uint64_t seed : {3u, 11u}) {
    std::mt19937_64 rng(seed);
    const std::size_t n = 48;
    const DenseMatrix gd = random_grounded_laplacian(n, 4, rng);
    const Vector d = tec_like_diagonal(n, 5, 5, rng, 0.3);
    const auto oracle = dense_oracle(gd, d);
    const auto sparse =
        ShiftInvertLanczos::smallest_positive(SparseMatrix::from_dense(gd), d);
    ASSERT_TRUE(oracle.has_value());
    ASSERT_TRUE(sparse.has_value());
    EXPECT_NEAR(sparse->eigenvalue, *oracle, 1e-8 * *oracle);
  }
}

TEST(ShiftInvertLanczos, EigenpairSatisfiesPencilEquation) {
  std::mt19937_64 rng(5);
  const std::size_t n = 30;
  const DenseMatrix gd = random_pd_stieltjes(n, rng);
  const Vector d = tec_like_diagonal(n, 6, 4, rng);
  const SparseMatrix g = SparseMatrix::from_dense(gd);
  const auto res = ShiftInvertLanczos::smallest_positive(g, d);
  ASSERT_TRUE(res.has_value());
  // Recompute ‖G·v − λ·D·v‖ / ‖G·v‖ from scratch; must match the certificate.
  EXPECT_NEAR(norm2(res->eigenvector), 1.0, 1e-12);
  Vector gv = g * res->eigenvector;
  const double gvn = norm2(gv);
  for (std::size_t i = 0; i < n; ++i) {
    gv[i] -= res->eigenvalue * d[i] * res->eigenvector[i];
  }
  EXPECT_LE(norm2(gv) / gvn, 1e-9);
}

TEST(ShiftInvertLanczos, InteriorShiftMatchesZeroShift) {
  std::mt19937_64 rng(9);
  const std::size_t n = 32;
  const DenseMatrix gd = random_pd_stieltjes(n, rng);
  const Vector d = tec_like_diagonal(n, 6, 3, rng);
  const SparseMatrix g = SparseMatrix::from_dense(gd);
  const auto base = ShiftInvertLanczos::smallest_positive(g, d);
  ASSERT_TRUE(base.has_value());
  for (double f : {0.25, 0.5, 0.9, 0.999}) {
    // Every σ strictly inside (0, λ_m) keeps K = G − σD SPD; f → 1 drives K
    // toward singular (the near-breakdown regime).
    ShiftInvertLanczosOptions opts;
    opts.shift = f * base->eigenvalue;
    const auto shifted = ShiftInvertLanczos::smallest_positive(g, d, opts);
    ASSERT_TRUE(shifted.has_value()) << "f=" << f;
    EXPECT_EQ(shifted->shift, opts.shift) << "f=" << f;  // no re-shift occurred
    EXPECT_NEAR(shifted->eigenvalue, base->eigenvalue, 1e-8 * base->eigenvalue)
        << "f=" << f;
  }
}

TEST(ShiftInvertLanczos, BadShiftReshiftsWhenAllowed) {
  std::mt19937_64 rng(13);
  const std::size_t n = 24;
  const DenseMatrix gd = random_pd_stieltjes(n, rng);
  const Vector d = tec_like_diagonal(n, 5, 3, rng);
  const SparseMatrix g = SparseMatrix::from_dense(gd);
  const auto base = ShiftInvertLanczos::smallest_positive(g, d);
  ASSERT_TRUE(base.has_value());

  ShiftInvertLanczosOptions opts;
  opts.shift = 2.0 * base->eigenvalue;  // past λ_m: K is indefinite
  const auto res = ShiftInvertLanczos::smallest_positive(g, d, opts);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->shift, 0.0);  // the re-shift is recorded in the result
  EXPECT_NEAR(res->eigenvalue, base->eigenvalue, 1e-8 * base->eigenvalue);
}

TEST(ShiftInvertLanczos, BadShiftThrowsTypedErrorWhenReshiftDisabled) {
  std::mt19937_64 rng(13);
  const std::size_t n = 24;
  const DenseMatrix gd = random_pd_stieltjes(n, rng);
  const Vector d = tec_like_diagonal(n, 5, 3, rng);
  const SparseMatrix g = SparseMatrix::from_dense(gd);
  const auto base = ShiftInvertLanczos::smallest_positive(g, d);
  ASSERT_TRUE(base.has_value());

  ShiftInvertLanczosOptions opts;
  opts.shift = 2.0 * base->eigenvalue;
  opts.allow_reshift = false;
  try {
    ShiftInvertLanczos::smallest_positive(g, d, opts);
    FAIL() << "expected LanczosShiftError";
  } catch (const LanczosShiftError& e) {
    EXPECT_EQ(e.shift(), opts.shift);
  }
}

TEST(ShiftInvertLanczos, ImpossibleToleranceThrowsTypedNonConvergence) {
  std::mt19937_64 rng(17);
  const std::size_t n = 20;
  const DenseMatrix gd = random_pd_stieltjes(n, rng);
  const Vector d = tec_like_diagonal(n, 4, 3, rng);
  const SparseMatrix g = SparseMatrix::from_dense(gd);

  ShiftInvertLanczosOptions opts;
  opts.rel_tol = 1e-30;  // below machine precision: certificate cannot be met
  try {
    ShiftInvertLanczos::smallest_positive(g, d, opts);
    FAIL() << "expected LanczosNonConvergedError";
  } catch (const LanczosNonConvergedError& e) {
    EXPECT_GT(e.iterations(), 0u);
    EXPECT_GT(e.rel_residual(), 0.0);
  }
}

TEST(ShiftInvertLanczos, NoPositiveDirectionGivesNoEigenvalue) {
  std::mt19937_64 rng(21);
  const std::size_t n = 16;
  const DenseMatrix gd = random_pd_stieltjes(n, rng);
  const SparseMatrix g = SparseMatrix::from_dense(gd);

  Vector zero(n);
  EXPECT_FALSE(ShiftInvertLanczos::smallest_positive(g, zero).has_value());

  const Vector neg = tec_like_diagonal(n, 0, 5, rng);  // only negative entries
  EXPECT_FALSE(dense_oracle(gd, neg).has_value());
  EXPECT_FALSE(ShiftInvertLanczos::smallest_positive(g, neg).has_value());
}

TEST(ShiftInvertLanczos, OneByOneSystem) {
  TripletList t(1, 1);
  t.add(0, 0, 2.0);
  const SparseMatrix g = SparseMatrix::from_triplets(t);
  Vector d(1);
  d[0] = 0.5;
  const auto res = ShiftInvertLanczos::smallest_positive(g, d);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->eigenvalue, 4.0, 1e-12);
  EXPECT_EQ(res->iterations, 1u);
}

TEST(ShiftInvertLanczos, WorkspaceReuseIsBitIdentical) {
  std::mt19937_64 rng(25);
  const std::size_t n = 40;
  const DenseMatrix gd = random_pd_stieltjes(n, rng);
  const Vector d = tec_like_diagonal(n, 8, 6, rng);
  const SparseMatrix g = SparseMatrix::from_dense(gd);
  const auto symbolic = SparseCholeskySymbolic::analyze(g);

  ShiftInvertLanczosWorkspace ws;
  const auto first = ShiftInvertLanczos::smallest_positive(g, d, symbolic, ws);
  const auto second = ShiftInvertLanczos::smallest_positive(g, d, symbolic, ws);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // A warm workspace must not change the arithmetic.
  EXPECT_EQ(first->eigenvalue, second->eigenvalue);
  EXPECT_EQ(first->iterations, second->iterations);
  EXPECT_EQ(first->rel_residual, second->rel_residual);
  EXPECT_TRUE(first->eigenvector == second->eigenvector);
}

TEST(ShiftInvertLanczos, ShapeMismatchThrows) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  const SparseMatrix g = SparseMatrix::from_triplets(t);
  Vector d(3);
  EXPECT_THROW(ShiftInvertLanczos::smallest_positive(g, d), std::invalid_argument);
}

}  // namespace
}  // namespace tfc::linalg
