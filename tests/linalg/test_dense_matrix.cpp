#include "linalg/dense_matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tfc::linalg {
namespace {

TEST(DenseMatrix, ZeroConstructor) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 0.0);
  EXPECT_FALSE(m.square());
}

TEST(DenseMatrix, InitializerList) {
  DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_TRUE(m.square());
}

TEST(DenseMatrix, RaggedInitializerThrows) {
  EXPECT_THROW((DenseMatrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(DenseMatrix, Identity) {
  auto id = DenseMatrix::identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  Vector x{1.0, 2.0, 3.0};
  EXPECT_TRUE(approx_equal(id * x, x, 0.0));
}

TEST(DenseMatrix, Diagonal) {
  auto d = DenseMatrix::diagonal(Vector{2.0, -1.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), -1.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(DenseMatrix, RowColDiag) {
  DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(approx_equal(m.row(1), Vector{3.0, 4.0}, 0.0));
  EXPECT_TRUE(approx_equal(m.col(0), Vector{1.0, 3.0}, 0.0));
  EXPECT_TRUE(approx_equal(m.diag(), Vector{1.0, 4.0}, 0.0));
}

TEST(DenseMatrix, DiagOnRectangularThrows) {
  DenseMatrix m(2, 3);
  EXPECT_THROW(m.diag(), std::invalid_argument);
}

TEST(DenseMatrix, Transpose) {
  DenseMatrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(DenseMatrix, MatVec) {
  DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  Vector y = m * Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_THROW(m * Vector{1.0}, std::invalid_argument);
}

TEST(DenseMatrix, MatMat) {
  DenseMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  DenseMatrix b{{0.0, 1.0}, {1.0, 0.0}};
  auto c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(DenseMatrix, AddSubScaleDiff) {
  DenseMatrix a{{1.0, 0.0}, {0.0, 1.0}};
  DenseMatrix b{{0.0, 2.0}, {2.0, 0.0}};
  auto c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 1), 2.0);
  c -= b;
  EXPECT_DOUBLE_EQ(c.max_abs_diff(a), 0.0);
  auto d = a * 3.0;
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
}

TEST(DenseMatrix, ShapeMismatchThrows) {
  DenseMatrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.max_abs_diff(b), std::invalid_argument);
  EXPECT_THROW(a * b.transposed() * a, std::invalid_argument);
}

TEST(DenseMatrix, FrobeniusNorm) {
  DenseMatrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(DenseMatrix, BilinearAndQuadratic) {
  DenseMatrix m{{2.0, 1.0}, {1.0, 3.0}};
  Vector x{1.0, 2.0};
  // xᵀMx = 2 + 1*2 + 2*1 + 3*4 = 18
  EXPECT_DOUBLE_EQ(quadratic(m, x), 18.0);
  Vector y{1.0, 0.0};
  // xᵀMy = x·(first column) = 1*2 + 2*1 = 4
  EXPECT_DOUBLE_EQ(bilinear(x, m, y), 4.0);
}

TEST(DenseMatrix, AtBoundsChecked) {
  DenseMatrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

}  // namespace
}  // namespace tfc::linalg
