#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/cholesky.h"
#include "linalg/ldlt.h"
#include "linalg/lu.h"
#include "linalg/random_stieltjes.h"

namespace tfc::linalg {
namespace {

DenseMatrix random_spd(std::size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  DenseMatrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = u(rng);
  }
  DenseMatrix a = b * b.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += double(n);  // well conditioned
  return a;
}

TEST(Cholesky, Small2x2) {
  DenseMatrix a{{4.0, 2.0}, {2.0, 3.0}};
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->l()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(f->l()(1, 0), 1.0);
  EXPECT_NEAR(f->l()(1, 1), std::sqrt(2.0), 1e-15);
}

TEST(Cholesky, ReconstructsMatrix) {
  std::mt19937_64 rng(42);
  DenseMatrix a = random_spd(8, rng);
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  DenseMatrix llt = f->l() * f->l().transposed();
  EXPECT_LT(llt.max_abs_diff(a), 1e-10);
}

TEST(Cholesky, SolveMatchesResidual) {
  std::mt19937_64 rng(7);
  DenseMatrix a = random_spd(12, rng);
  Vector b(12);
  for (std::size_t i = 0; i < 12; ++i) b[i] = std::sin(double(i));
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  Vector x = f->solve(b);
  Vector r = a * x - b;
  EXPECT_LT(norm2(r), 1e-10 * norm2(b) + 1e-12);
}

TEST(Cholesky, FailsOnIndefinite) {
  DenseMatrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor::factor(a).has_value());
  EXPECT_FALSE(is_positive_definite(a));
}

TEST(Cholesky, FailsOnSingular) {
  DenseMatrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(CholeskyFactor::factor(a).has_value());
}

TEST(Cholesky, NonSquareThrows) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(CholeskyFactor::factor(a), std::invalid_argument);
}

TEST(Cholesky, InverseColumnAndFullInverse) {
  std::mt19937_64 rng(3);
  DenseMatrix a = random_spd(6, rng);
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  DenseMatrix inv = f->inverse();
  DenseMatrix prod = a * inv;
  EXPECT_LT(prod.max_abs_diff(DenseMatrix::identity(6)), 1e-10);
  Vector c2 = f->inverse_column(2);
  EXPECT_TRUE(approx_equal(c2, inv.col(2), 1e-12));
}

TEST(Cholesky, LogDetMatchesLu) {
  std::mt19937_64 rng(11);
  DenseMatrix a = random_spd(7, rng);
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->log_det(), std::log(determinant(a)), 1e-8);
}

TEST(Ldlt, MatchesCholeskyOnSpd) {
  std::mt19937_64 rng(5);
  DenseMatrix a = random_spd(9, rng);
  auto f = LdltFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->positive_definite());
  Vector b(9, 1.0);
  Vector x_ldlt = f->solve(b);
  Vector x_chol = CholeskyFactor::factor(a)->solve(b);
  EXPECT_TRUE(approx_equal(x_ldlt, x_chol, 1e-9));
}

TEST(Ldlt, InertiaCountsNegativeEigenvalues) {
  // diag(2, -3, 5) has exactly one negative eigenvalue.
  DenseMatrix a = DenseMatrix::diagonal(Vector{2.0, -3.0, 5.0});
  auto f = LdltFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->negative_pivots(), 1u);
  EXPECT_FALSE(f->positive_definite());
}

TEST(Ldlt, IndefiniteSolveStillCorrect) {
  DenseMatrix a{{2.0, 1.0}, {1.0, -1.0}};
  auto f = LdltFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  Vector b{1.0, 0.0};
  Vector x = f->solve(b);
  Vector r = a * x - b;
  EXPECT_LT(norm2(r), 1e-12);
}

TEST(Lu, SolveGeneralMatrix) {
  DenseMatrix a{{0.0, 2.0, 1.0}, {1.0, 0.0, 0.0}, {4.0, 1.0, 2.0}};  // needs pivoting
  auto f = LuFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  Vector b{3.0, 1.0, 7.0};
  Vector x = f->solve(b);
  Vector r = a * x - b;
  EXPECT_LT(norm2(r), 1e-12);
}

TEST(Lu, DeterminantKnown) {
  DenseMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NEAR(determinant(a), -2.0, 1e-14);
}

TEST(Lu, SingularDetected) {
  DenseMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(LuFactor::factor(a).has_value());
  EXPECT_EQ(determinant(a), 0.0);
}

TEST(Lu, PermutationParityInDeterminant) {
  // Row-swapped identity has determinant -1.
  DenseMatrix a{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(determinant(a), -1.0, 1e-14);
}

// Property sweep: all three factorizations agree on PD Stieltjes matrices of
// varying size.
class FactorizationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FactorizationSweep, AllSolversAgreeOnStieltjes) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(1000 + n);
  DenseMatrix a = random_pd_stieltjes(n, rng);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = 0.1 * double(i) + 1.0;

  auto chol = CholeskyFactor::factor(a);
  auto ldlt = LdltFactor::factor(a);
  auto lu = LuFactor::factor(a);
  ASSERT_TRUE(chol && ldlt && lu);
  Vector x1 = chol->solve(b);
  Vector x2 = ldlt->solve(b);
  Vector x3 = lu->solve(b);
  EXPECT_TRUE(approx_equal(x1, x2, 1e-8));
  EXPECT_TRUE(approx_equal(x1, x3, 1e-8));
  EXPECT_LT(norm2(a * x1 - b), 1e-8 * norm2(b) + 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FactorizationSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace tfc::linalg
