#include "linalg/minimize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace tfc::linalg {
namespace {

MinimizeOptions golden_opts() {
  MinimizeOptions o;
  o.method = ScalarMethod::kGoldenSection;
  return o;
}

MinimizeOptions brent_opts() {
  MinimizeOptions o;
  o.method = ScalarMethod::kBrent;
  return o;
}

TEST(Minimize, QuadraticBothMethods) {
  const auto f = [](double x) { return (x - 2.5) * (x - 2.5) + 1.0; };
  for (const auto& o : {golden_opts(), brent_opts()}) {
    auto r = minimize_scalar(f, 0.0, 10.0, o);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 2.5, 1e-3);
    EXPECT_NEAR(r.value, 1.0, 1e-6);
  }
}

TEST(Minimize, BrentUsesFewerEvaluationsOnSmoothObjective) {
  const auto f = [](double x) { return std::cosh(x - 1.7); };
  MinimizeOptions g = golden_opts(), b = brent_opts();
  g.x_tol = b.x_tol = 1e-8;
  auto rg = minimize_scalar(f, -5.0, 5.0, g);
  auto rb = minimize_scalar(f, -5.0, 5.0, b);
  EXPECT_TRUE(rg.converged && rb.converged);
  EXPECT_NEAR(rb.x, 1.7, 1e-6);
  EXPECT_LT(rb.evaluations, rg.evaluations);
}

TEST(Minimize, MinimumAtBoundary) {
  const auto f = [](double x) { return x; };  // decreasing toward lo
  for (const auto& o : {golden_opts(), brent_opts()}) {
    auto r = minimize_scalar(f, 1.0, 4.0, o);
    EXPECT_NEAR(r.x, 1.0, 5e-3);
  }
}

TEST(Minimize, HandlesInfinityRegion) {
  // Infeasible beyond 3.0 (runaway-style): methods must stay on the
  // feasible side and find the interior optimum at 2.0.
  const auto f = [](double x) {
    if (x > 3.0) return std::numeric_limits<double>::infinity();
    return (x - 2.0) * (x - 2.0);
  };
  for (const auto& o : {golden_opts(), brent_opts()}) {
    auto r = minimize_scalar(f, 0.0, 6.0, o);
    EXPECT_NEAR(r.x, 2.0, 1e-2) << (o.method == ScalarMethod::kBrent ? "brent" : "golden");
    EXPECT_LT(r.value, 1e-3);
  }
}

TEST(Minimize, RespectsEvaluationBudget) {
  const auto f = [](double x) { return x * x; };
  MinimizeOptions o = golden_opts();
  o.max_evaluations = 5;
  o.x_tol = 1e-15;
  auto r = minimize_scalar(f, -1.0, 1.0, o);
  EXPECT_LE(r.evaluations, 5u);
  EXPECT_FALSE(r.converged);
}

TEST(Minimize, EmptyIntervalThrows) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW(minimize_scalar(f, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(minimize_scalar(f, 2.0, 1.0), std::invalid_argument);
}

TEST(Minimize, ReportedValueMatchesEvaluatedPoint) {
  int calls = 0;
  const auto f = [&](double x) {
    ++calls;
    return std::abs(x - 0.3);
  };
  auto r = minimize_scalar(f, 0.0, 1.0, brent_opts());
  EXPECT_EQ(std::size_t(calls), r.evaluations);
  EXPECT_NEAR(r.value, std::abs(r.x - 0.3), 1e-15);
}

}  // namespace
}  // namespace tfc::linalg
