#include "linalg/sparse_matrix.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "linalg/random_stieltjes.h"

namespace tfc::linalg {
namespace {

TEST(TripletList, OutOfRangeThrows) {
  TripletList t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(t.add(0, 2, 1.0), std::out_of_range);
}

TEST(TripletList, SymmetricAddDiagonalOnce) {
  TripletList t(2, 2);
  t.add_symmetric(0, 0, 5.0);  // diagonal: added once
  t.add_symmetric(0, 1, -1.0);
  auto m = SparseMatrix::from_triplets(t);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
}

TEST(SparseMatrix, DuplicatesSummed) {
  TripletList t(2, 2);
  t.add(0, 1, 1.0);
  t.add(0, 1, 2.5);
  auto m = SparseMatrix::from_triplets(t);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.5);
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(SparseMatrix, ExactZerosDropped) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, -1.0);
  t.add(1, 1, 2.0);
  auto m = SparseMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(SparseMatrix, FromDenseRoundTrip) {
  DenseMatrix d{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}, {2.0, 0.0, 4.0}};
  auto s = SparseMatrix::from_dense(d);
  EXPECT_EQ(s.nnz(), 5u);
  EXPECT_DOUBLE_EQ(s.to_dense().max_abs_diff(d), 0.0);
}

TEST(SparseMatrix, FromDenseDropTolerance) {
  DenseMatrix d{{1.0, 1e-14}, {1e-14, 1.0}};
  auto s = SparseMatrix::from_dense(d, 1e-12);
  EXPECT_EQ(s.nnz(), 2u);
}

TEST(SparseMatrix, MatVecMatchesDense) {
  std::mt19937_64 rng(21);
  DenseMatrix d = random_pd_stieltjes(15, rng);
  auto s = SparseMatrix::from_dense(d);
  Vector x(15);
  for (std::size_t i = 0; i < 15; ++i) x[i] = double(i) - 7.0;
  EXPECT_TRUE(approx_equal(s * x, d * x, 1e-12));
}

TEST(SparseMatrix, MultiplyAddAccumulates) {
  auto s = SparseMatrix::identity(3);
  Vector x{1.0, 2.0, 3.0};
  Vector y{10.0, 10.0, 10.0};
  s.multiply_add(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 16.0);
}

TEST(SparseMatrix, MatVecDimensionMismatchThrows) {
  auto s = SparseMatrix::identity(3);
  Vector bad(2);
  EXPECT_THROW(s * bad, std::invalid_argument);
}

TEST(SparseMatrix, DiagAbsentEntriesZero) {
  TripletList t(3, 3);
  t.add(0, 0, 4.0);
  t.add(1, 2, 1.0);
  auto m = SparseMatrix::from_triplets(t);
  Vector d = m.diag();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(SparseMatrix, Transposed) {
  TripletList t(2, 3);
  t.add(0, 2, 5.0);
  t.add(1, 0, -1.0);
  auto m = SparseMatrix::from_triplets(t).transposed();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
}

TEST(SparseMatrix, AddScaled) {
  auto a = SparseMatrix::identity(2);
  TripletList t(2, 2);
  t.add(0, 1, 1.0);
  auto b = SparseMatrix::from_triplets(t);
  auto c = a.add_scaled(b, -2.0);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), -2.0);
}

TEST(SparseMatrix, AddScaledShapeMismatchThrows) {
  auto a = SparseMatrix::identity(2);
  auto b = SparseMatrix::identity(3);
  EXPECT_THROW(a.add_scaled(b, 1.0), std::invalid_argument);
}

TEST(SparseMatrix, IsSymmetric) {
  TripletList t(2, 2);
  t.add_symmetric(0, 1, -3.0);
  t.add(0, 0, 1.0);
  auto m = SparseMatrix::from_triplets(t);
  EXPECT_TRUE(m.is_symmetric());
  TripletList t2(2, 2);
  t2.add(0, 1, 1.0);
  EXPECT_FALSE(SparseMatrix::from_triplets(t2).is_symmetric());
}

TEST(SparseMatrix, RowPtrStructure) {
  TripletList t(3, 3);
  t.add(2, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(2, 2, 1.0);
  auto m = SparseMatrix::from_triplets(t);
  ASSERT_EQ(m.row_ptr().size(), 4u);
  EXPECT_EQ(m.row_ptr()[0], 0u);
  EXPECT_EQ(m.row_ptr()[1], 1u);  // row 0 has one entry
  EXPECT_EQ(m.row_ptr()[2], 1u);  // row 1 empty
  EXPECT_EQ(m.row_ptr()[3], 3u);  // row 2 has two entries
  // Columns sorted within row 2.
  EXPECT_EQ(m.col_idx()[1], 0u);
  EXPECT_EQ(m.col_idx()[2], 2u);
}

}  // namespace
}  // namespace tfc::linalg
