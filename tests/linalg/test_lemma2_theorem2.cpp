/// Direct numerical verification of the paper's Lemma 2 and the Cramer's-rule
/// argument inside Theorem 2, on small synthetic (G, D) pencils where dense
/// determinants are well scaled.
#include <gtest/gtest.h>

#include <random>

#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "linalg/random_stieltjes.h"

namespace tfc::linalg {
namespace {

/// Small PD Stieltjes G with a ±α Peltier-style diagonal D.
struct Pencil {
  DenseMatrix g;
  DenseMatrix d;
};

Pencil make_pencil(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  RandomStieltjesOptions o;
  o.max_coupling = 1.0;
  o.min_shift = 0.2;
  o.max_shift = 0.8;
  Pencil p;
  p.g = random_pd_stieltjes(6, rng, o);
  Vector dd(6);
  dd[1] = +0.4;   // a "hot" node
  dd[4] = -0.4;   // a "cold" node
  p.d = DenseMatrix::diagonal(dd);
  return p;
}

DenseMatrix minor_matrix(const DenseMatrix& a, std::size_t drop_row,
                         std::size_t drop_col) {
  DenseMatrix m(a.rows() - 1, a.cols() - 1);
  for (std::size_t r = 0, mr = 0; r < a.rows(); ++r) {
    if (r == drop_row) continue;
    for (std::size_t c = 0, mc = 0; c < a.cols(); ++c) {
      if (c == drop_col) continue;
      m(mr, mc++) = a(r, c);
    }
    ++mr;
  }
  return m;
}

TEST(Lemma2, AIsSingularAtLambdaM) {
  auto p = make_pencil(11);
  auto lm = pencil_smallest_positive_eigenvalue(p.g, p.d);
  ASSERT_TRUE(lm.has_value());
  DenseMatrix a = p.g;
  a -= p.d * *lm;
  // det(A(λm)) ≈ 0 relative to the product of diagonal magnitudes.
  double scale = 1.0;
  for (std::size_t i = 0; i < 6; ++i) scale *= std::abs(a(i, i));
  EXPECT_LT(std::abs(determinant(a)), 1e-6 * scale);
}

TEST(Lemma2, MinorsNonsingularAtLambdaM) {
  auto p = make_pencil(23);
  auto lm = pencil_smallest_positive_eigenvalue(p.g, p.d);
  ASSERT_TRUE(lm.has_value());
  DenseMatrix a = p.g;
  a -= p.d * *lm;
  // Lemma 2: every A_kl (one row and one column removed) is nonsingular.
  for (std::size_t k = 0; k < 6; ++k) {
    for (std::size_t l = 0; l < 6; ++l) {
      const DenseMatrix m = minor_matrix(a, k, l);
      EXPECT_TRUE(LuFactor::factor(m).has_value()) << "singular minor at (" << k << ","
                                                   << l << ")";
    }
  }
}

TEST(Theorem2, CramersRuleIdentityForH) {
  // h_kl(i)·det(A(i)) == (−1)^{k+l}·det(minor_{lk}(A(i))) for i < λm.
  auto p = make_pencil(37);
  auto lm = pencil_smallest_positive_eigenvalue(p.g, p.d);
  ASSERT_TRUE(lm.has_value());
  const double i = 0.6 * *lm;
  DenseMatrix a = p.g;
  a -= p.d * i;
  auto chol = CholeskyFactor::factor(a);
  ASSERT_TRUE(chol.has_value());
  const DenseMatrix h = chol->inverse();
  const double det_a = determinant(a);
  for (std::size_t k = 0; k < 6; ++k) {
    for (std::size_t l = 0; l < 6; ++l) {
      const double sign = ((k + l) % 2 == 0) ? 1.0 : -1.0;
      const double rhs = sign * determinant(minor_matrix(a, l, k));
      EXPECT_NEAR(h(k, l) * det_a, rhs, 1e-9 * (std::abs(rhs) + 1.0))
          << "(k,l)=(" << k << "," << l << ")";
    }
  }
}

TEST(Theorem2, EveryHEntryDivergesAtLambdaM) {
  auto p = make_pencil(51);
  auto lm = pencil_smallest_positive_eigenvalue(p.g, p.d);
  ASSERT_TRUE(lm.has_value());
  const auto h_at = [&](double i) {
    DenseMatrix a = p.g;
    a -= p.d * i;
    return CholeskyFactor::factor(a)->inverse();
  };
  const DenseMatrix mid = h_at(0.5 * *lm);
  const DenseMatrix near = h_at((1.0 - 1e-7) * *lm);
  for (std::size_t k = 0; k < 6; ++k) {
    for (std::size_t l = 0; l < 6; ++l) {
      EXPECT_GT(near(k, l), 1e3 * std::max(mid(k, l), 1e-6))
          << "no divergence at (" << k << "," << l << ")";
      EXPECT_GE(near(k, l), 0.0);  // +∞ direction, not −∞ (Lemma 3)
    }
  }
}

TEST(Theorem1, QuadraticFormCharacterization) {
  // θᵀ(G − iD)θ > 0 for all θ when i < λm; some θ breaks it when i > λm.
  auto p = make_pencil(67);
  auto lm = pencil_smallest_positive_eigenvalue(p.g, p.d);
  ASSERT_TRUE(lm.has_value());
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  DenseMatrix below = p.g;
  below -= p.d * (0.95 * *lm);
  for (int rep = 0; rep < 200; ++rep) {
    Vector x(6);
    for (std::size_t q = 0; q < 6; ++q) x[q] = u(rng);
    EXPECT_GT(quadratic(below, x), 0.0);
  }
  DenseMatrix above = p.g;
  above -= p.d * (1.05 * *lm);
  EXPECT_FALSE(is_positive_definite(above));
}

}  // namespace
}  // namespace tfc::linalg
