#include "linalg/inverse_positive.h"

#include <gtest/gtest.h>

#include <random>

#include "linalg/properties.h"
#include "linalg/random_stieltjes.h"

namespace tfc::linalg {
namespace {

TEST(SpdInverse, IdentityIsSelfInverse) {
  auto inv = spd_inverse(DenseMatrix::identity(4));
  EXPECT_LT(inv.max_abs_diff(DenseMatrix::identity(4)), 1e-14);
}

TEST(SpdInverse, ThrowsOnIndefinite) {
  DenseMatrix a{{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_THROW(spd_inverse(a), std::invalid_argument);
}

// Lemma 3: the inverse of a PD Stieltjes matrix is nonnegative.
class Lemma3Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Lemma3Sweep, InverseOfPdStieltjesIsNonnegative) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(333 + n);
  for (int rep = 0; rep < 8; ++rep) {
    DenseMatrix s = random_pd_stieltjes(n, rng);
    DenseMatrix h = spd_inverse(s);
    EXPECT_TRUE(is_nonnegative(h, 1e-12)) << "n=" << n << " rep=" << rep;
    EXPECT_TRUE(is_symmetric(h, 1e-9));
  }
}

TEST_P(Lemma3Sweep, InverseOfGroundedLaplacianIsStrictlyPositive) {
  // Irreducible M-matrices have strictly positive inverses (Varga).
  const std::size_t n = GetParam();
  std::mt19937_64 rng(777 + n);
  DenseMatrix s = random_grounded_laplacian(n, 1, rng);
  DenseMatrix h = spd_inverse(s);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) EXPECT_GT(h(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Lemma3Sweep, ::testing::Values(2, 3, 5, 9, 17, 33));

// Conjecture 1 on random matrices — the paper's own validation experiment,
// scaled to test-suite budget (the bench re-runs it at much larger volume).
class Conjecture1Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Conjecture1Sweep, HoldsOnUniformlyShiftedMatrices) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(1234 + n);
  for (int rep = 0; rep < 4; ++rep) {
    DenseMatrix s = random_pd_stieltjes(n, rng);
    auto res = check_conjecture1(s);
    EXPECT_TRUE(res.holds) << "violated at (" << res.k << "," << res.l
                           << "), min eig " << res.min_eigenvalue;
  }
}

TEST_P(Conjecture1Sweep, HoldsOnGroundedLaplacians) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(4321 + n);
  for (int rep = 0; rep < 4; ++rep) {
    DenseMatrix s = random_grounded_laplacian(n, 1 + n / 8, rng);
    auto res = check_conjecture1(s);
    EXPECT_TRUE(res.holds) << "violated at (" << res.k << "," << res.l
                           << "), min eig " << res.min_eigenvalue;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Conjecture1Sweep, ::testing::Values(2, 3, 4, 6, 8, 12));

TEST(Conjecture1, PairBudgetLimitsWork) {
  std::mt19937_64 rng(5);
  DenseMatrix s = random_pd_stieltjes(6, rng);
  auto res = check_conjecture1(s, /*pair_budget=*/3);
  EXPECT_TRUE(res.holds);
}

TEST(Conjecture1, IdentityTriviallyHolds) {
  // H = I; DIAG(e_k)·I·DIAG(e_l) is PSD but we only hit the tolerance path —
  // the check must not report a violation.
  auto res = check_conjecture1(DenseMatrix::identity(3));
  EXPECT_TRUE(res.holds);
}

TEST(InverseDerivative, MatchesFiniteDifference) {
  // d/di (G - iD)^{-1} = H D H.
  std::mt19937_64 rng(6);
  DenseMatrix g = random_pd_stieltjes(6, rng);
  Vector dd(6);
  dd[0] = 0.3;
  dd[3] = -0.3;
  auto d = DenseMatrix::diagonal(dd);

  const double i0 = 0.1, eps = 1e-6;
  auto h_at = [&](double i) {
    DenseMatrix m = g;
    m -= d * i;
    return spd_inverse(m);
  };
  DenseMatrix h = h_at(i0);
  DenseMatrix analytic = inverse_derivative(h, d);
  DenseMatrix fd = (h_at(i0 + eps) - h_at(i0 - eps)) * (1.0 / (2.0 * eps));
  EXPECT_LT(analytic.max_abs_diff(fd), 1e-5 * (1.0 + analytic.frobenius_norm()));
}

}  // namespace
}  // namespace tfc::linalg
