#include "linalg/sparse_cholesky.h"

#include <gtest/gtest.h>

#include <random>

#include "linalg/cholesky.h"
#include "linalg/ordering.h"
#include "linalg/random_stieltjes.h"

namespace tfc::linalg {
namespace {

SparseMatrix grid_laplacian(std::size_t rows, std::size_t cols, double ground) {
  const std::size_t n = rows * cols;
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  TripletList t(n, n);
  std::vector<double> diag(n, ground);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        t.add_symmetric(id(r, c), id(r, c + 1), -1.0);
        diag[id(r, c)] += 1.0;
        diag[id(r, c + 1)] += 1.0;
      }
      if (r + 1 < rows) {
        t.add_symmetric(id(r, c), id(r + 1, c), -1.0);
        diag[id(r, c)] += 1.0;
        diag[id(r + 1, c)] += 1.0;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) t.add(i, i, diag[i]);
  return SparseMatrix::from_triplets(t);
}

TEST(SparseCholesky, SolvesGridSystem) {
  auto a = grid_laplacian(8, 9, 0.5);
  auto f = SparseCholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  Vector b(a.rows());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = double(i % 7);
  Vector x = f->solve(b);
  EXPECT_LT(norm2(a * x - b), 1e-9 * norm2(b));
}

TEST(SparseCholesky, MatchesDenseCholesky) {
  std::mt19937_64 rng(17);
  DenseMatrix d = random_pd_stieltjes(25, rng);
  auto a = SparseMatrix::from_dense(d);
  auto fs = SparseCholeskyFactor::factor(a);
  auto fd = CholeskyFactor::factor(d);
  ASSERT_TRUE(fs && fd);
  Vector b(25);
  for (std::size_t i = 0; i < 25; ++i) b[i] = std::cos(double(i));
  EXPECT_TRUE(approx_equal(fs->solve(b), fd->solve(b), 1e-9));
  EXPECT_NEAR(fs->log_det(), fd->log_det(), 1e-8);
}

TEST(SparseCholesky, AllOrderingsAgree) {
  auto a = grid_laplacian(5, 5, 1.0);
  auto f_rcm = SparseCholeskyFactor::factor(a, FillOrdering::kRcm);
  auto f_nat = SparseCholeskyFactor::factor(a, FillOrdering::kNatural);
  auto f_md = SparseCholeskyFactor::factor(a, FillOrdering::kMinDegree);
  ASSERT_TRUE(f_rcm && f_nat && f_md);
  Vector b(25, 1.0);
  EXPECT_TRUE(approx_equal(f_rcm->solve(b), f_nat->solve(b), 1e-10));
  EXPECT_TRUE(approx_equal(f_rcm->solve(b), f_md->solve(b), 1e-10));
}

TEST(SparseCholesky, BoolOverloadStillWorks) {
  auto a = grid_laplacian(4, 4, 1.0);
  auto f = SparseCholeskyFactor::factor(a, /*use_rcm=*/false);
  ASSERT_TRUE(f.has_value());
  Vector b(16, 1.0);
  EXPECT_LT(norm2(a * f->solve(b) - b), 1e-9 * norm2(b));
}

TEST(SparseCholesky, MinDegreeReducesFillOnGrid) {
  // On a 2-D grid, minimum degree produces (much) less fill than the natural
  // order and at least rivals RCM.
  auto a = grid_laplacian(18, 18, 0.5);
  auto f_nat = SparseCholeskyFactor::factor(a, FillOrdering::kNatural);
  auto f_md = SparseCholeskyFactor::factor(a, FillOrdering::kMinDegree);
  ASSERT_TRUE(f_nat && f_md);
  EXPECT_LT(f_md->factor_nnz(), f_nat->factor_nnz());
}

TEST(Ordering, MinimumDegreeIsValidPermutation) {
  auto a = grid_laplacian(7, 9, 1.0);
  auto perm = minimum_degree(a);
  std::vector<bool> seen(a.rows(), false);
  for (auto p : perm) {
    ASSERT_LT(p, a.rows());
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Ordering, MinimumDegreeStartsWithLowestDegreeNode) {
  // On a star graph the leaves (degree 1) must be eliminated before the hub.
  TripletList t(5, 5);
  for (std::size_t leaf = 1; leaf < 5; ++leaf) t.add_symmetric(0, leaf, -1.0);
  for (std::size_t i = 0; i < 5; ++i) t.add(i, i, 5.0);
  auto a = SparseMatrix::from_triplets(t);
  auto perm = minimum_degree(a);
  // The hub (degree 4) cannot be eliminated before at least three leaves
  // have gone (until then every leaf has strictly smaller degree).
  EXPECT_GE(perm[0], 3u);
  // Star elimination in leaf-first order creates zero fill.
  auto f = SparseCholeskyFactor::factor(a, FillOrdering::kMinDegree);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->factor_nnz(), 5u + 4u);  // diagonal + one entry per leaf
}

TEST(SparseCholesky, DetectsIndefinite) {
  DenseMatrix d{{1.0, 2.0}, {2.0, 1.0}};
  auto a = SparseMatrix::from_dense(d);
  EXPECT_FALSE(SparseCholeskyFactor::factor(a).has_value());
  EXPECT_FALSE(is_positive_definite(a));
}

TEST(SparseCholesky, DetectsSingular) {
  // Pure Neumann Laplacian (no grounding) is singular.
  auto a = grid_laplacian(4, 4, 0.0);
  EXPECT_FALSE(SparseCholeskyFactor::factor(a).has_value());
}

TEST(SparseCholesky, InverseColumnMatchesDense) {
  std::mt19937_64 rng(23);
  DenseMatrix d = random_pd_stieltjes(12, rng);
  auto a = SparseMatrix::from_dense(d);
  auto fs = SparseCholeskyFactor::factor(a);
  ASSERT_TRUE(fs.has_value());
  DenseMatrix inv = CholeskyFactor::factor(d)->inverse();
  for (std::size_t j : {std::size_t{0}, std::size_t{5}, std::size_t{11}}) {
    EXPECT_TRUE(approx_equal(fs->inverse_column(j), inv.col(j), 1e-9));
  }
}

TEST(SparseCholesky, FactorNnzIncludesDiagonal) {
  auto a = SparseMatrix::identity(6);
  auto f = SparseCholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->factor_nnz(), 6u);
}

TEST(Ordering, RcmReducesBandwidthOnShuffledGrid) {
  auto a = grid_laplacian(10, 10, 1.0);
  // Shuffle to destroy natural ordering.
  std::vector<std::size_t> shuffle_perm = identity_permutation(100);
  std::mt19937_64 rng(5);
  std::shuffle(shuffle_perm.begin(), shuffle_perm.end(), rng);
  auto shuffled = permute_symmetric(a, shuffle_perm);
  auto rcm = reverse_cuthill_mckee(shuffled);
  auto reordered = permute_symmetric(shuffled, rcm);
  EXPECT_LT(bandwidth(reordered), bandwidth(shuffled));
  EXPECT_LE(bandwidth(reordered), 20u);  // near-optimal for a 10x10 grid
}

TEST(Ordering, PermuteSymmetricPreservesValues) {
  auto a = grid_laplacian(3, 3, 1.0);
  auto perm = reverse_cuthill_mckee(a);
  auto b = permute_symmetric(a, perm);
  // Spectra are permutation invariant: check via quadratic forms.
  Vector x(9);
  for (std::size_t i = 0; i < 9; ++i) x[i] = double(i);
  Vector px = permute(x, perm);
  EXPECT_NEAR(dot(x, a * x), dot(px, b * px), 1e-10);
}

TEST(Ordering, InvertPermutationRoundTrips) {
  std::vector<std::size_t> p{2, 0, 3, 1};
  auto inv = invert_permutation(p);
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(inv[p[i]], i);
  Vector v{1.0, 2.0, 3.0, 4.0};
  EXPECT_TRUE(approx_equal(permute(permute(v, p), inv), v, 0.0));
}

TEST(Ordering, HandlesDisconnectedGraph) {
  // Two disconnected 2-node components.
  TripletList t(4, 4);
  t.add_symmetric(0, 1, -1.0);
  t.add_symmetric(2, 3, -1.0);
  for (std::size_t i = 0; i < 4; ++i) t.add(i, i, 2.0);
  auto a = SparseMatrix::from_triplets(t);
  auto perm = reverse_cuthill_mckee(a);
  // Must be a valid permutation.
  std::vector<bool> seen(4, false);
  for (auto p : perm) {
    ASSERT_LT(p, 4u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
  // And factorization must still work.
  EXPECT_TRUE(SparseCholeskyFactor::factor(a).has_value());
}

class SparseCholeskyGridSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SparseCholeskyGridSweep, ResidualSmall) {
  const auto [r, c] = GetParam();
  auto a = grid_laplacian(r, c, 0.25);
  auto f = SparseCholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  Vector b(a.rows(), 1.0);
  Vector x = f->solve(b);
  EXPECT_LT(norm2(a * x - b), 1e-9 * norm2(b));
}

INSTANTIATE_TEST_SUITE_P(Grids, SparseCholeskyGridSweep,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{1, 20},
                                           std::pair<std::size_t, std::size_t>{12, 12},
                                           std::pair<std::size_t, std::size_t>{20, 30}));

}  // namespace
}  // namespace tfc::linalg
