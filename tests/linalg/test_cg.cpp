#include "linalg/cg.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <stdexcept>

#include "linalg/cholesky.h"
#include "linalg/random_stieltjes.h"
#include "obs/obs.h"

namespace tfc::linalg {
namespace {

SparseMatrix laplacian_1d(std::size_t n, double ground = 1.0) {
  TripletList t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double diag = (i == 0 || i + 1 == n) ? ground : 0.0;
    if (i > 0) {
      t.add_symmetric(i, i - 1, -1.0);
      diag += 1.0;
    }
    if (i + 1 < n) diag += 1.0;
    t.add(i, i, diag);
  }
  return SparseMatrix::from_triplets(t);
}

TEST(Cg, SolvesIdentityInstantly) {
  auto a = SparseMatrix::identity(4);
  Vector b{1.0, 2.0, 3.0, 4.0};
  auto r = conjugate_gradient(a, b, identity_preconditioner());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(approx_equal(r.x, b, 1e-12));
}

TEST(Cg, SolvesGroundedLaplacian) {
  auto a = laplacian_1d(50);
  Vector b(50, 1.0);
  auto r = conjugate_gradient(a, b, jacobi_preconditioner(a));
  ASSERT_TRUE(r.converged);
  EXPECT_LT(norm2(a * r.x - b), 1e-10 * norm2(b));
}

TEST(Cg, MatchesDenseCholesky) {
  std::mt19937_64 rng(99);
  DenseMatrix d = random_pd_stieltjes(30, rng);
  auto a = SparseMatrix::from_dense(d);
  Vector b(30);
  for (std::size_t i = 0; i < 30; ++i) b[i] = double(i % 5) - 2.0;
  CgResult r = cg_solve(a, b);
  Vector x_ch = CholeskyFactor::factor(d)->solve(b);
  EXPECT_TRUE(approx_equal(r.x, x_ch, 1e-8));
  // cg_solve reports solver effort alongside the solution.
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_LT(r.residual_norm, 1e-10 * norm2(b));
}

TEST(Cg, ZeroRhsGivesZero) {
  auto a = laplacian_1d(10);
  Vector b(10);
  auto r = conjugate_gradient(a, b, jacobi_preconditioner(a));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_DOUBLE_EQ(norm2(r.x), 0.0);
}

TEST(Cg, WarmStartReducesIterations) {
  auto a = laplacian_1d(100);
  Vector b(100, 1.0);
  auto cold = conjugate_gradient(a, b, jacobi_preconditioner(a));
  ASSERT_TRUE(cold.converged);
  auto warm = conjugate_gradient(a, b, jacobi_preconditioner(a), {}, cold.x);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 1u);
}

TEST(Cg, MaxIterationsRespected) {
  auto a = laplacian_1d(200, 1e-6);  // nearly singular, slow convergence
  Vector b(200, 1.0);
  CgOptions opts;
  opts.max_iterations = 2;
  opts.rel_tol = 1e-15;
  auto r = conjugate_gradient(a, b, identity_preconditioner(), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 2u);
}

TEST(Cg, NonConvergenceLogsWarning) {
  // Hitting max_iterations must emit a structured WARN with the reason.
  auto& logger = obs::Logger::global();
  const auto saved_level = logger.level();
  auto saved_sinks = logger.sinks();
  std::ostringstream captured;
  logger.set_sinks({std::make_shared<obs::TextSink>(captured)});
  logger.set_level(obs::Level::kWarn);

  auto a = laplacian_1d(200, 1e-6);
  Vector b(200, 1.0);
  CgOptions opts;
  opts.max_iterations = 2;
  opts.rel_tol = 1e-15;
  auto r = conjugate_gradient(a, b, identity_preconditioner(), opts);

  logger.set_level(saved_level);
  logger.set_sinks(std::move(saved_sinks));

  EXPECT_FALSE(r.converged);
  const std::string text = captured.str();
  EXPECT_NE(text.find("cg_no_convergence"), std::string::npos);
  EXPECT_NE(text.find("reason=max_iterations"), std::string::npos);
}

TEST(Cg, NonSpdDetected) {
  // Indefinite matrix with an RHS exposing the negative-curvature direction:
  // CG must bail out, not loop forever.
  DenseMatrix d{{1.0, 2.0}, {2.0, 1.0}};
  auto a = SparseMatrix::from_dense(d);
  Vector b{1.0, -1.0};
  auto r = conjugate_gradient(a, b, identity_preconditioner());
  EXPECT_FALSE(r.converged);
}

TEST(Cg, DimensionMismatchThrows) {
  auto a = SparseMatrix::identity(3);
  Vector b(2);
  EXPECT_THROW(conjugate_gradient(a, b, identity_preconditioner()), std::invalid_argument);
  Vector ok(3), bad_guess(4);
  EXPECT_THROW(conjugate_gradient(a, ok, identity_preconditioner(), {}, bad_guess),
               std::invalid_argument);
}

TEST(Cg, CgSolveThrowsOnFailure) {
  DenseMatrix d{{1.0, 2.0}, {2.0, 1.0}};
  auto a = SparseMatrix::from_dense(d);
  Vector b{1.0, -1.0};
  EXPECT_THROW(cg_solve(a, b), std::runtime_error);
}

TEST(Preconditioners, JacobiRequiresPositiveDiagonal) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, -1.0);
  auto a = SparseMatrix::from_triplets(t);
  EXPECT_THROW(jacobi_preconditioner(a), std::invalid_argument);
}

TEST(Preconditioners, SsorOmegaValidated) {
  auto a = laplacian_1d(5);
  EXPECT_THROW(ssor_preconditioner(a, 0.0), std::invalid_argument);
  EXPECT_THROW(ssor_preconditioner(a, 2.0), std::invalid_argument);
}

TEST(Preconditioners, SsorSpeedsUpOverJacobi) {
  auto a = laplacian_1d(400, 0.01);
  Vector b(400, 1.0);
  auto jac = conjugate_gradient(a, b, jacobi_preconditioner(a));
  auto ssor = conjugate_gradient(a, b, ssor_preconditioner(a, 1.2));
  ASSERT_TRUE(jac.converged);
  ASSERT_TRUE(ssor.converged);
  EXPECT_LT(ssor.iterations, jac.iterations);
  EXPECT_TRUE(approx_equal(jac.x, ssor.x, 1e-6 * norm_inf(jac.x) + 1e-8));
}

// SSOR preconditioner must be symmetric positive definite as an operator:
// check <u, M⁻¹v> == <M⁻¹u, v> on random vectors.
TEST(Preconditioners, SsorOperatorIsSymmetric) {
  auto a = laplacian_1d(30);
  auto m = ssor_preconditioner(a, 1.0);
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Vector x(30), y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x[i] = u(rng);
    y[i] = u(rng);
  }
  EXPECT_NEAR(dot(x, m(y)), dot(m(x), y), 1e-10);
}

class CgSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgSizeSweep, ResidualBelowTolerance) {
  const std::size_t n = GetParam();
  auto a = laplacian_1d(n);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(0.1 * double(i));
  auto r = conjugate_gradient(a, b, jacobi_preconditioner(a));
  ASSERT_TRUE(r.converged);
  EXPECT_LT(norm2(a * r.x - b), 1e-9 * (norm2(b) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgSizeSweep, ::testing::Values(2, 10, 33, 100, 500));

}  // namespace
}  // namespace tfc::linalg
