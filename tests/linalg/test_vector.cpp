#include "linalg/vector.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tfc::linalg {
namespace {

TEST(Vector, DefaultIsEmpty) {
  Vector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(Vector, SizedConstructorZeroFills) {
  Vector v(5);
  EXPECT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vector, FillConstructor) {
  Vector v(3, 2.5);
  EXPECT_EQ(v[0], 2.5);
  EXPECT_EQ(v[2], 2.5);
}

TEST(Vector, InitializerList) {
  Vector v{1.0, -2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], -2.0);
}

TEST(Vector, AtBoundsChecked) {
  Vector v(2);
  EXPECT_THROW(v.at(2), std::out_of_range);
}

TEST(Vector, AddSubScale) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  Vector c = a + b;
  EXPECT_EQ(c[0], 4.0);
  EXPECT_EQ(c[1], 1.0);
  c -= a;
  EXPECT_EQ(c[0], 3.0);
  c *= 2.0;
  EXPECT_EQ(c[0], 6.0);
  c /= 3.0;
  EXPECT_DOUBLE_EQ(c[0], 2.0);
}

TEST(Vector, MismatchedAddThrows) {
  Vector a(2), b(3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  EXPECT_THROW(axpy(1.0, a, b), std::invalid_argument);
}

TEST(Vector, DivideByZeroThrows) {
  Vector a{1.0};
  EXPECT_THROW(a /= 0.0, std::invalid_argument);
}

TEST(Vector, DotAndNorms) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
  Vector b{-7.0, 1.0};
  EXPECT_DOUBLE_EQ(norm_inf(b), 7.0);
}

TEST(Vector, Axpy) {
  Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
  EXPECT_DOUBLE_EQ(y[1], 21.0);
}

TEST(Vector, MinMaxArgmaxSum) {
  Vector v{2.0, 9.0, -3.0, 9.0};
  EXPECT_DOUBLE_EQ(max_entry(v), 9.0);
  EXPECT_DOUBLE_EQ(min_entry(v), -3.0);
  EXPECT_EQ(argmax(v), 1u);  // first of the ties
  EXPECT_DOUBLE_EQ(sum(v), 17.0);
}

TEST(Vector, MinMaxOnEmptyThrows) {
  Vector v;
  EXPECT_THROW(max_entry(v), std::invalid_argument);
  EXPECT_THROW(min_entry(v), std::invalid_argument);
  EXPECT_THROW(argmax(v), std::invalid_argument);
}

TEST(Vector, ApproxEqual) {
  Vector a{1.0, 2.0};
  Vector b{1.0 + 1e-9, 2.0 - 1e-9};
  EXPECT_TRUE(approx_equal(a, b, 1e-8));
  EXPECT_FALSE(approx_equal(a, b, 1e-10));
}

TEST(Vector, FillAndResize) {
  Vector v(2);
  v.fill(7.0);
  EXPECT_EQ(v[1], 7.0);
  v.resize(4);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v[3], 0.0);  // new entries zero-filled
}

}  // namespace
}  // namespace tfc::linalg
