#include "tec/device.h"

#include <gtest/gtest.h>

namespace tfc::tec {
namespace {

TecDeviceParams dev() { return TecDeviceParams::chowdhury_superlattice(); }

TEST(TecDevice, PresetValidates) {
  EXPECT_NO_THROW(dev().validate());
}

TEST(TecDevice, ValidationRejectsNonPositive) {
  auto d = dev();
  d.seebeck = 0.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = dev();
  d.resistance = -1.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = dev();
  d.g_hot_contact = 0.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(TecDevice, Equation1ColdSideHeat) {
  auto d = dev();
  const double i = 5.0, tc = 350.0, th = 355.0;
  const double expected = d.seebeck * i * tc - 0.5 * d.resistance * i * i -
                          d.internal_conductance * (th - tc);
  EXPECT_DOUBLE_EQ(d.cold_side_heat(i, tc, th), expected);
}

TEST(TecDevice, Equation2HotSideHeat) {
  auto d = dev();
  const double i = 5.0, tc = 350.0, th = 355.0;
  const double expected = d.seebeck * i * th + 0.5 * d.resistance * i * i -
                          d.internal_conductance * (th - tc);
  EXPECT_DOUBLE_EQ(d.hot_side_heat(i, tc, th), expected);
}

TEST(TecDevice, Equation3InputPowerIsDifference) {
  // p_TEC = q_h − q_c = r·i² + α·i·Δθ must hold identically (Eq. 3).
  auto d = dev();
  for (double i : {0.0, 1.0, 3.5, 8.0}) {
    for (double dt : {-5.0, 0.0, 5.0, 20.0}) {
      const double tc = 350.0, th = tc + dt;
      EXPECT_NEAR(d.input_power(i, dt), d.hot_side_heat(i, tc, th) - d.cold_side_heat(i, tc, th),
                  1e-12);
    }
  }
}

TEST(TecDevice, ZeroCurrentIsPassive) {
  auto d = dev();
  // At i = 0 the device only conducts: q_c = q_h = −κΔθ and p_TEC = 0.
  EXPECT_DOUBLE_EQ(d.input_power(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cold_side_heat(0.0, 350.0, 360.0), -d.internal_conductance * 10.0);
  EXPECT_DOUBLE_EQ(d.hot_side_heat(0.0, 350.0, 360.0), -d.internal_conductance * 10.0);
}

TEST(TecDevice, PumpingPeaksAtAlphaThetaOverR) {
  auto d = dev();
  const double tc = 350.0;
  const double i_star = d.max_pumping_current(tc);
  EXPECT_NEAR(i_star, d.seebeck * tc / d.resistance, 1e-12);
  const double q_star = d.cold_side_heat(i_star, tc, tc);
  EXPECT_GT(q_star, d.cold_side_heat(i_star * 0.8, tc, tc));
  EXPECT_GT(q_star, d.cold_side_heat(i_star * 1.2, tc, tc));
}

TEST(TecDevice, CopPositiveInOperatingRangeAndZeroBeyond) {
  auto d = dev();
  const double tc = 350.0, th = 352.0;
  EXPECT_GT(d.cop(4.0, tc, th), 0.0);
  // Far beyond the useful range Joule heat dominates: q_c < 0 ⇒ COP < 0.
  const double i_big = 3.0 * d.max_pumping_current(tc);
  EXPECT_LT(d.cop(i_big, tc, th), 0.0);
  // Zero current: no input power; COP defined as 0.
  EXPECT_DOUBLE_EQ(d.cop(0.0, tc, th), 0.0);
}

TEST(TecDevice, CopDecreasesWithTemperatureDifference) {
  // Pumping against a larger Δθ is less efficient.
  auto d = dev();
  const double i = 5.0, tc = 350.0;
  EXPECT_GT(d.cop(i, tc, tc + 1.0), d.cop(i, tc, tc + 8.0));
}

TEST(TecDevice, ThermalLinkMatchesContacts) {
  auto d = dev();
  auto link = d.thermal_link();
  EXPECT_DOUBLE_EQ(link.g_cold_contact, d.g_cold_contact);
  EXPECT_DOUBLE_EQ(link.g_internal, d.internal_conductance);
  EXPECT_DOUBLE_EQ(link.g_hot_contact, d.g_hot_contact);
}

TEST(TecDevice, CalibrationMatchesPublishedScales) {
  // The calibration targets from DESIGN.md: device power ≈ 0.1 W at ≈ 6 A,
  // Peltier pumping comparable to one hot tile's worst-case heat (~0.7 W).
  auto d = dev();
  EXPECT_NEAR(d.input_power(6.0, 2.0), 0.11, 0.03);
  EXPECT_NEAR(d.seebeck * 6.0 * 360.0, 0.72, 0.15);
  // Optimal pumping current well above the operating range (no premature
  // pumping collapse at Table-I currents).
  EXPECT_GT(d.max_pumping_current(360.0), 15.0);
}

}  // namespace
}  // namespace tfc::tec
