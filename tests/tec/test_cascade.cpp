#include <gtest/gtest.h>

#include "core/current_optimizer.h"
#include "linalg/cholesky.h"
#include "linalg/properties.h"
#include "tec/runaway.h"

namespace tfc::tec {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 4;
  g.die_width = g.die_height = 2e-3;
  return g;
}

TileMask one_tec() {
  TileMask m(4, 4);
  m.set(1, 1);
  return m;
}

linalg::Vector powers() {
  linalg::Vector p(16, 0.08);
  p[5] = 0.5;
  return p;
}

ElectroThermalSystem make(std::size_t stages) {
  return ElectroThermalSystem::assemble(small_geom(), one_tec(), powers(),
                                        TecDeviceParams::chowdhury_superlattice(),
                                        stages);
}

TEST(Cascade, StageCountReflectedInNodeLists) {
  auto s1 = make(1);
  auto s3 = make(3);
  EXPECT_EQ(s1.model().hot_nodes().size(), 1u);
  EXPECT_EQ(s3.model().hot_nodes().size(), 3u);
  EXPECT_EQ(s3.model().cold_nodes().size(), 3u);
  EXPECT_EQ(s3.node_count(), s1.node_count() + 4u);  // two extra pairs
}

TEST(Cascade, ZeroStagesRejected) {
  thermal::PackageModelOptions o;
  o.geometry = small_geom();
  o.tec_tiles = one_tec();
  o.tec_link = TecDeviceParams::chowdhury_superlattice().thermal_link();
  o.tec_stages = 0;
  EXPECT_THROW(thermal::PackageModel::build(o), std::invalid_argument);
}

TEST(Cascade, NetworkStaysLemma1Conformant) {
  auto sys = make(3);
  const auto& g = sys.matrix_g();
  EXPECT_TRUE(linalg::is_stieltjes(g));
  EXPECT_TRUE(linalg::is_irreducible(g));
  EXPECT_TRUE(linalg::is_positive_definite(g.to_dense()));
}

TEST(Cascade, EnergyBalanceHolds) {
  auto sys = make(2);
  const double i = 4.0;
  auto op = sys.solve(i);
  ASSERT_TRUE(op.has_value());
  double q_out = 0.0;
  for (std::size_t k = 0; k < sys.node_count(); ++k) {
    const double g = sys.model().network().ambient_conductance(k);
    if (g > 0.0) q_out += g * (op->theta[k] - sys.model().geometry().ambient);
  }
  EXPECT_NEAR(q_out, linalg::sum(sys.power(0.0)) + op->tec_input_power,
              1e-6 * q_out);
  // Two stages in series draw twice the Joule power of one at equal current.
  auto op1 = make(1).solve(i);
  ASSERT_TRUE(op1.has_value());
  EXPECT_GT(op->tec_input_power, 1.6 * op1->tec_input_power);
}

TEST(Cascade, EndpointsSpanTheStack) {
  auto sys = make(3);
  const Tile t{1, 1};
  const std::size_t cold = sys.model().tec_cold_node(t);
  const std::size_t hot = sys.model().tec_hot_node(t);
  // Endpoints are stage 0's cold node and stage 2's hot node.
  EXPECT_EQ(cold, sys.model().cold_nodes().front());
  EXPECT_EQ(hot, sys.model().hot_nodes().back());
  // Under drive every stage pumps: the summed per-stage plate inversions of
  // the cascade exceed the single stage's inversion. (The *endpoint-to-
  // endpoint* ΔT is smaller — even negative — because the chip's heat flows
  // through the stack and drops temperature across each inter-stage contact;
  // that loss is exactly why cascades lose at small ΔT, see the test below.)
  auto op3 = sys.solve(3.0);
  auto s1 = make(1);
  auto op1 = s1.solve(3.0);
  ASSERT_TRUE(op3 && op1);
  double summed_inversion = 0.0;
  for (std::size_t s = 0; s < 3; ++s) {
    summed_inversion += op3->theta[sys.model().hot_nodes()[s]] -
                        op3->theta[sys.model().cold_nodes()[s]];
  }
  const double dt1 = op1->theta[s1.model().tec_hot_node(t)] -
                     op1->theta[s1.model().tec_cold_node(t)];
  EXPECT_GT(summed_inversion, dt1);
  // And the endpoint drop is indeed below the summed inversions (interfaces
  // eat the gains).
  EXPECT_LT(op3->theta[hot] - op3->theta[cold], summed_inversion);
}

TEST(Cascade, RunawayLimitFiniteAndLower) {
  auto lm1 = runaway_limit(make(1));
  auto lm2 = runaway_limit(make(2));
  ASSERT_TRUE(lm1 && lm2);
  // More coupled stages ⇒ runaway at or below the single-stage limit.
  EXPECT_LE(*lm2, *lm1 * (1.0 + 1e-9));
}

TEST(Cascade, SingleStageOptimumBeatsCascadeAtSmallDeltaT) {
  // On-chip hot-spot cooling needs small ΔT; the cascade's extra Joule heat
  // and interface resistance make it worse here — the honest engineering
  // answer, matching why the paper's thin-film devices are single-stage.
  auto o1 = core::optimize_current(make(1));
  auto o2 = core::optimize_current(make(2));
  EXPECT_LT(o1.peak_tile_temperature, o2.peak_tile_temperature + 1e-9);
}

}  // namespace
}  // namespace tfc::tec
