#include "tec/runaway.h"

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/properties.h"

namespace tfc::tec {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = 4;
  g.tile_cols = 4;
  g.die_width = 2e-3;
  g.die_height = 2e-3;
  return g;
}

ElectroThermalSystem make_system(std::size_t num_tecs = 3) {
  TileMask dep(4, 4);
  if (num_tecs >= 1) dep.set(1, 1);
  if (num_tecs >= 2) dep.set(1, 2);
  if (num_tecs >= 3) dep.set(2, 1);
  linalg::Vector p(16, 0.08);
  p[5] = 0.5;
  return ElectroThermalSystem::assemble(small_geom(), dep, p,
                                        TecDeviceParams::chowdhury_superlattice());
}

TEST(Runaway, SchurAndDenseAgree) {
  auto sys = make_system();
  RunawayOptions schur, dense;
  schur.method = RunawayMethod::kSchur;
  dense.method = RunawayMethod::kDenseBisect;
  auto a = runaway_limit(sys, schur);
  auto b = runaway_limit(sys, dense);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(*a, *b, 1e-5 * *a);
}

TEST(Runaway, SparseAgreesWithDenseOracleTo1e8) {
  auto sys = make_system();
  RunawayOptions sparse, dense;
  sparse.method = RunawayMethod::kSparse;
  dense.method = RunawayMethod::kDenseBisect;
  auto a = runaway_limit(sys, sparse);
  auto b = runaway_limit(sys, dense);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(*a, *b, 1e-8 * *b);
}

TEST(Runaway, SparseIsTheDefaultMethod) {
  RunawayOptions defaults;
  EXPECT_EQ(defaults.method, RunawayMethod::kSparse);
  auto r = runaway_limit_ex(make_system());
  EXPECT_EQ(r.method_used, RunawayMethod::kSparse);
  ASSERT_TRUE(r.lambda_m.has_value());
  EXPECT_GT(r.iterations, 0u);
  // Krylov exhaustion bound: ≤ rank(D)+1 = 2·devices+1 steps.
  EXPECT_LE(r.iterations, 2u * 3u + 1u);
}

TEST(Runaway, SparseFallsBackToSchurForTinyTecSets) {
  RunawayOptions opts;
  opts.method = RunawayMethod::kSparse;
  opts.sparse_min_devices = 2;
  auto r = runaway_limit_ex(make_system(1), opts);
  EXPECT_EQ(r.method_used, RunawayMethod::kSchur);
  ASSERT_TRUE(r.lambda_m.has_value());
  EXPECT_EQ(r.iterations, 0u);

  // At the threshold the sparse path runs for real.
  auto r2 = runaway_limit_ex(make_system(2), opts);
  EXPECT_EQ(r2.method_used, RunawayMethod::kSparse);
  ASSERT_TRUE(r2.lambda_m.has_value());
  RunawayOptions schur;
  schur.method = RunawayMethod::kSchur;
  auto oracle = runaway_limit(make_system(2), schur);
  ASSERT_TRUE(oracle.has_value());
  EXPECT_NEAR(*r2.lambda_m, *oracle, 1e-8 * *oracle);
}

TEST(Runaway, SparseReusesPooledWorkspace) {
  auto sys = make_system();
  RunawayOptions opts;
  opts.method = RunawayMethod::kSparse;
  linalg::ShiftInvertLanczosWorkspace ws;
  auto cold = runaway_limit_ex(sys, opts, &ws);
  auto warm = runaway_limit_ex(sys, opts, &ws);
  ASSERT_TRUE(cold.lambda_m && warm.lambda_m);
  EXPECT_EQ(*cold.lambda_m, *warm.lambda_m);  // bit-identical on a warm ws
  EXPECT_EQ(cold.iterations, warm.iterations);
}

TEST(Runaway, MethodNamesRoundTrip) {
  for (RunawayMethod m :
       {RunawayMethod::kSparse, RunawayMethod::kSchur, RunawayMethod::kDenseBisect}) {
    auto parsed = parse_runaway_method(runaway_method_name(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_runaway_method("lobpcg").has_value());
  EXPECT_STREQ(runaway_method_list(), "sparse|schur|dense");
}

TEST(Runaway, NoTecsGivesNoLimit) {
  auto sys = ElectroThermalSystem::assemble(small_geom(), TileMask(),
                                            linalg::Vector(16, 0.1),
                                            TecDeviceParams::chowdhury_superlattice());
  EXPECT_FALSE(runaway_limit(sys).has_value());
}

TEST(Runaway, Theorem1PositiveDefinitenessSplitsAtLambdaM) {
  auto sys = make_system();
  auto lm = runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  EXPECT_TRUE(
      linalg::is_positive_definite(sys.system_matrix(0.99 * *lm).to_dense()));
  EXPECT_FALSE(
      linalg::is_positive_definite(sys.system_matrix(1.01 * *lm).to_dense()));
}

TEST(Runaway, SolveReturnsNulloptBeyondLambdaM) {
  auto sys = make_system();
  auto lm = runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  EXPECT_TRUE(sys.solve(0.9 * *lm).has_value());
  EXPECT_FALSE(sys.solve(1.1 * *lm).has_value());
}

TEST(Runaway, Theorem2TemperaturesDivergeApproachingLambdaM) {
  auto sys = make_system();
  auto lm = runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  auto near = sys.solve(0.999 * *lm);
  auto mid = sys.solve(0.9 * *lm);
  ASSERT_TRUE(near && mid);
  // Every tile is dramatically hotter close to the limit.
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_GT(near->tile_temperatures[k], mid->tile_temperatures[k]);
  }
  EXPECT_GT(near->peak_tile_temperature, 10.0 * mid->peak_tile_temperature);
}

TEST(Runaway, InversePositivityBelowLambdaM) {
  // Lemma 3 applied to G − i·D: H(i) ≥ 0 elementwise for 0 ≤ i < λ_m.
  auto sys = make_system(1);
  auto lm = runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  for (double frac : {0.0, 0.5, 0.95}) {
    auto f = linalg::CholeskyFactor::factor(sys.system_matrix(frac * *lm).to_dense());
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(linalg::is_nonnegative(f->inverse(), 1e-10));
  }
}

TEST(Runaway, MoreTecsLowerLimit) {
  // More Peltier coupling cannot raise the runaway current.
  auto one = runaway_limit(make_system(1));
  auto three = runaway_limit(make_system(3));
  ASSERT_TRUE(one && three);
  EXPECT_LE(*three, *one * (1.0 + 1e-9));
}

TEST(Runaway, WeakerHotContactLowersLimit) {
  // The hot-side contact "plays an important role in the thermal runaway
  // problem" (Section IV.B): choking it traps Peltier + Joule heat.
  auto dev = TecDeviceParams::chowdhury_superlattice();
  TileMask dep(4, 4);
  dep.set(1, 1);
  linalg::Vector p(16, 0.08);
  auto strong = ElectroThermalSystem::assemble(small_geom(), dep, p, dev);
  dev.g_hot_contact *= 0.25;
  auto weak = ElectroThermalSystem::assemble(small_geom(), dep, p, dev);
  auto lm_strong = runaway_limit(strong);
  auto lm_weak = runaway_limit(weak);
  ASSERT_TRUE(lm_strong && lm_weak);
  EXPECT_LT(*lm_weak, *lm_strong);
}

TEST(SchurReduction, BlockSizesAndDiagonal) {
  auto sys = make_system(2);
  auto red = schur_reduction(sys);
  EXPECT_EQ(red.s0.rows(), 4u);  // 2 devices × (hot + cold)
  EXPECT_EQ(red.tec_nodes.size(), 4u);
  // First half hot (+α), second half cold (−α).
  EXPECT_DOUBLE_EQ(red.d_diag[0], sys.device().seebeck);
  EXPECT_DOUBLE_EQ(red.d_diag[1], sys.device().seebeck);
  EXPECT_DOUBLE_EQ(red.d_diag[2], -sys.device().seebeck);
  EXPECT_DOUBLE_EQ(red.d_diag[3], -sys.device().seebeck);
  EXPECT_TRUE(linalg::is_symmetric(red.s0, 1e-9));
  EXPECT_TRUE(linalg::is_positive_definite(red.s0));
}

TEST(SchurReduction, ThrowsWithoutTecs) {
  auto sys = ElectroThermalSystem::assemble(small_geom(), TileMask(),
                                            linalg::Vector(16, 0.1),
                                            TecDeviceParams::chowdhury_superlattice());
  EXPECT_THROW(schur_reduction(sys), std::invalid_argument);
}

// Property sweep: the Schur reduction must certify positive definiteness of
// the full matrix at every probed current, on both sides of λ_m.
class SchurEquivalenceSweep : public ::testing::TestWithParam<double> {};

TEST_P(SchurEquivalenceSweep, PdEquivalence) {
  auto sys = make_system();
  auto red = schur_reduction(sys);
  auto lm = runaway_limit(sys);
  ASSERT_TRUE(lm.has_value());
  const double i = GetParam() * *lm;
  linalg::DenseMatrix reduced = red.s0;
  reduced -= linalg::DenseMatrix::diagonal(red.d_diag) * i;
  EXPECT_EQ(linalg::is_positive_definite(reduced),
            linalg::is_positive_definite(sys.system_matrix(i).to_dense()));
}

INSTANTIATE_TEST_SUITE_P(Fractions, SchurEquivalenceSweep,
                         ::testing::Values(0.0, 0.3, 0.8, 0.99, 1.02, 1.5, 3.0));

}  // namespace
}  // namespace tfc::tec
