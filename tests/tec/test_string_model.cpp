#include "tec/string_model.h"

#include <gtest/gtest.h>

namespace tfc::tec {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = g.tile_cols = 4;
  g.die_width = g.die_height = 2e-3;
  return g;
}

ElectroThermalSystem make_system() {
  TileMask dep(4, 4);
  dep.set(1, 1);
  dep.set(1, 2);
  dep.set(2, 1);
  linalg::Vector p(16, 0.08);
  p[5] = 0.5;
  return ElectroThermalSystem::assemble(small_geom(), dep, p,
                                        TecDeviceParams::chowdhury_superlattice());
}

TEST(StringModel, SupplyPowerIdentity) {
  // V·i == Σ device input power + lead loss, exactly.
  auto sys = make_system();
  const double i = 5.0;
  auto op = sys.solve(i);
  ASSERT_TRUE(op.has_value());
  auto s = string_electrical(sys, i, op->theta, /*lead_resistance=*/5e-3);
  EXPECT_NEAR(s.supply_power, s.device_power + s.lead_power, 1e-10);
  EXPECT_EQ(s.devices, 3u);
}

TEST(StringModel, MatchesOperatingPointPower) {
  auto sys = make_system();
  const double i = 4.0;
  auto op = sys.solve(i);
  ASSERT_TRUE(op.has_value());
  auto s = string_electrical(sys, i, op->theta);
  EXPECT_NEAR(s.device_power, op->tec_input_power, 1e-10);
  EXPECT_DOUBLE_EQ(s.lead_power, 0.0);
}

TEST(StringModel, ZeroCurrentGivesSeebeckVoltageOnly) {
  // At i = 0 the string still shows the open-circuit Seebeck EMF of the
  // passive temperature gradients.
  auto sys = make_system();
  auto op = sys.solve(0.0);
  ASSERT_TRUE(op.has_value());
  auto s = string_electrical(sys, 0.0, op->theta);
  EXPECT_DOUBLE_EQ(s.supply_power, 0.0);
  EXPECT_DOUBLE_EQ(s.device_power, 0.0);
  // Passive gradient: hot plate cooler than cold plate (heat flows down), so
  // the EMF is nonzero.
  EXPECT_NE(s.supply_voltage, 0.0);
}

TEST(StringModel, VoltageScalesWithDeviceCountAndCurrent) {
  auto sys = make_system();
  auto op4 = sys.solve(4.0);
  auto op8 = sys.solve(8.0);
  ASSERT_TRUE(op4 && op8);
  auto s4 = string_electrical(sys, 4.0, op4->theta);
  auto s8 = string_electrical(sys, 8.0, op8->theta);
  EXPECT_GT(s8.supply_voltage, s4.supply_voltage);
  // Ohmic floor: V >= n·i·r − (EMF corrections).
  EXPECT_GT(s4.supply_voltage, 0.5 * 3.0 * 4.0 * sys.device().resistance);
  EXPECT_GE(s4.max_device_voltage, s4.supply_voltage / 3.0 - 1e-9);
}

TEST(StringModel, LeadResistanceAddsLoss) {
  auto sys = make_system();
  const double i = 6.0;
  auto op = sys.solve(i);
  ASSERT_TRUE(op.has_value());
  auto without = string_electrical(sys, i, op->theta, 0.0);
  auto with = string_electrical(sys, i, op->theta, 10e-3);
  EXPECT_NEAR(with.lead_power, i * i * 10e-3, 1e-12);
  EXPECT_NEAR(with.supply_voltage - without.supply_voltage, i * 10e-3, 1e-12);
}

TEST(StringModel, InputValidation) {
  auto sys = make_system();
  auto op = sys.solve(1.0);
  ASSERT_TRUE(op.has_value());
  EXPECT_THROW(string_electrical(sys, 1.0, linalg::Vector(3)), std::invalid_argument);
  EXPECT_THROW(string_electrical(sys, 1.0, op->theta, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace tfc::tec
