#include "tec/electro_thermal.h"

#include <gtest/gtest.h>

#include "linalg/properties.h"

namespace tfc::tec {
namespace {

thermal::PackageGeometry small_geom() {
  thermal::PackageGeometry g;
  g.tile_rows = 4;
  g.tile_cols = 4;
  g.die_width = 2e-3;
  g.die_height = 2e-3;
  return g;
}

linalg::Vector powers(double hot = 0.6) {
  linalg::Vector p(16, 0.08);
  p[5] = hot;
  return p;
}

TileMask center_tec() {
  TileMask m(4, 4);
  m.set(1, 1);
  return m;
}

ElectroThermalSystem make_system() {
  return ElectroThermalSystem::assemble(small_geom(), center_tec(), powers(),
                                        TecDeviceParams::chowdhury_superlattice());
}

TEST(ElectroThermal, RejectsModelWithoutTecsUnlessAllowed) {
  thermal::PackageModelOptions opts;
  opts.geometry = small_geom();
  auto model = thermal::PackageModel::build(opts);
  EXPECT_THROW(
      ElectroThermalSystem(model, TecDeviceParams::chowdhury_superlattice()),
      std::invalid_argument);
  EXPECT_NO_THROW(ElectroThermalSystem(model, TecDeviceParams::chowdhury_superlattice(),
                                       /*allow_no_tec=*/true));
}

TEST(ElectroThermal, DMatrixStructure) {
  auto sys = make_system();
  const auto& d = sys.d_diagonal();
  const auto& hot = sys.model().hot_nodes();
  const auto& cold = sys.model().cold_nodes();
  ASSERT_EQ(hot.size(), 1u);
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_DOUBLE_EQ(d[hot[0]], sys.device().seebeck);
  EXPECT_DOUBLE_EQ(d[cold[0]], -sys.device().seebeck);
  std::size_t nonzeros = 0;
  for (std::size_t k = 0; k < d.size(); ++k) {
    if (d[k] != 0.0) ++nonzeros;
  }
  EXPECT_EQ(nonzeros, 2u);
  EXPECT_EQ(sys.matrix_d().nnz(), 2u);
}

TEST(ElectroThermal, SystemMatrixAtZeroCurrentIsG) {
  auto sys = make_system();
  EXPECT_DOUBLE_EQ(sys.system_matrix(0.0).to_dense().max_abs_diff(
                       sys.matrix_g().to_dense()),
                   0.0);
}

TEST(ElectroThermal, SystemMatrixSubtractsScaledD) {
  auto sys = make_system();
  const double i = 3.0;
  auto lhs = sys.system_matrix(i).to_dense();
  auto rhs = sys.matrix_g().to_dense();
  rhs -= linalg::DenseMatrix::diagonal(sys.d_diagonal()) * i;
  EXPECT_LT(lhs.max_abs_diff(rhs), 1e-14);
}

TEST(ElectroThermal, PowerVectorCarriesJouleHalves) {
  auto sys = make_system();
  const double i = 4.0;
  auto p0 = sys.power(0.0);
  auto p = sys.power(i);
  const double joule = 0.5 * sys.device().resistance * i * i;
  const auto hot = sys.model().hot_nodes()[0];
  const auto cold = sys.model().cold_nodes()[0];
  EXPECT_NEAR(p[hot] - p0[hot], joule, 1e-15);
  EXPECT_NEAR(p[cold] - p0[cold], joule, 1e-15);
  // Total: tile power + full r·i².
  EXPECT_NEAR(linalg::sum(p), linalg::sum(p0) + sys.device().resistance * i * i, 1e-12);
}

TEST(ElectroThermal, NegativeCurrentRejected) {
  auto sys = make_system();
  EXPECT_FALSE(sys.solve(-1.0).has_value());
}

TEST(ElectroThermal, ModerateCurrentCools) {
  auto sys = make_system();
  auto op0 = sys.solve(0.0);
  auto op = sys.solve(4.0);
  ASSERT_TRUE(op0 && op);
  EXPECT_LT(op->peak_tile_temperature, op0->peak_tile_temperature);
  EXPECT_GT(op->tec_input_power, 0.0);
}

TEST(ElectroThermal, ColdSideBelowHotSideUnderDrive) {
  auto sys = make_system();
  auto op = sys.solve(5.0);
  ASSERT_TRUE(op.has_value());
  const double tc = op->theta[sys.model().tec_cold_node({1, 1})];
  const double th = sys.model().network().node_count() ? op->theta[sys.model().tec_hot_node({1, 1})] : 0.0;
  EXPECT_LT(tc, th);  // the Peltier pump inverts the passive gradient
}

TEST(ElectroThermal, EnergyBalanceIncludesTecPower) {
  // Heat rejected to ambient == silicon power + electrical TEC power.
  auto sys = make_system();
  const double i = 5.0;
  auto op = sys.solve(i);
  ASSERT_TRUE(op.has_value());
  const auto& net = sys.model().network();
  double q_out = 0.0;
  for (std::size_t k = 0; k < net.node_count(); ++k) {
    const double g = net.ambient_conductance(k);
    if (g > 0.0) q_out += g * (op->theta[k] - sys.model().geometry().ambient);
  }
  const double p_silicon = linalg::sum(sys.power(0.0));
  EXPECT_NEAR(q_out, p_silicon + op->tec_input_power, 1e-6 * q_out);
}

TEST(ElectroThermal, OperatingPointFieldsConsistent) {
  auto sys = make_system();
  auto op = sys.solve(3.0);
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->current, 3.0);
  EXPECT_EQ(op->tile_temperatures.size(), 16u);
  EXPECT_DOUBLE_EQ(op->peak_tile_temperature, linalg::max_entry(op->tile_temperatures));
  EXPECT_NEAR(op->tec_input_power, sys.tec_input_power(3.0, op->theta), 1e-12);
}

TEST(ElectroThermal, DenseBackendAgrees) {
  auto sys = make_system();
  thermal::SteadyStateOptions dense;
  dense.backend = thermal::SolverBackend::kDenseCholesky;
  auto a = sys.solve(4.0);
  auto b = sys.solve(4.0, dense);
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(approx_equal(a->theta, b->theta, 1e-7));
}

TEST(ElectroThermal, AssembleWithEmptyDeploymentGivesPassiveSystem) {
  auto sys = ElectroThermalSystem::assemble(small_geom(), TileMask(), powers(),
                                            TecDeviceParams::chowdhury_superlattice());
  EXPECT_EQ(sys.device_count(), 0u);
  auto op = sys.solve(0.0);
  ASSERT_TRUE(op.has_value());
  EXPECT_GT(op->peak_tile_temperature, sys.model().geometry().ambient);
  EXPECT_DOUBLE_EQ(op->tec_input_power, 0.0);
  // Current has no effect without devices (D = 0, no Joule sources).
  auto op2 = sys.solve(10.0);
  ASSERT_TRUE(op2.has_value());
  EXPECT_TRUE(approx_equal(op->theta, op2->theta, 1e-9));
}

TEST(ElectroThermal, TecInputPowerValidatesThetaSize) {
  auto sys = make_system();
  EXPECT_THROW(sys.tec_input_power(1.0, linalg::Vector(3)), std::invalid_argument);
}

TEST(ElectroThermal, GMatrixRemainsStieltjesWithTecs) {
  auto sys = make_system();
  EXPECT_TRUE(linalg::is_stieltjes(sys.matrix_g()));
  EXPECT_TRUE(linalg::is_irreducible(sys.matrix_g()));
}

}  // namespace
}  // namespace tfc::tec
